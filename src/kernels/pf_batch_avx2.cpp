// AVX2 backend of the batched p_F kernel: one width per 64-bit lane, the
// scalar term loop of cnt/pf_kernel.cpp replayed lane-parallel.
//
// Bit-identity is the design constraint everything here serves:
//
//  * Only IEEE-exact elementwise ops (+, −, ×, ÷, compares, blends) are
//    vectorized. Each lane's value sequence is then *identical* to the
//    scalar kernel's — vmulpd lane arithmetic is the same operation as
//    mulsd, bit for bit.
//  * Transcendentals (lgamma, exp) are scalar libm calls on lane-shared
//    per-term quantities, exactly as in the scalar kernel. Nothing ever
//    calls a vector math library.
//  * This translation unit is compiled -mavx2 -mno-fma -ffp-contract=off:
//    the compiler cannot contract a·b+c into an FMA the scalar kernel
//    (baseline x86-64, no FMA) would not have used.
//  * Divergent trip counts — per-lane truncation points, series/continued-
//    fraction branch splits, per-lane convergence breaks — are handled by
//    freezing: a lane that exits a scalar loop has its state captured at
//    that iteration, and whatever the still-running lanes compute
//    afterwards is discarded. The captured value is the scalar value.
//  * Lanes beyond the batch (m < 4) and nodes beyond a lane's grid are
//    padded with x = 0, τ = 0, fw = 0. The prefactored path never queues
//    a padded slot (its q stays 0, weighted by fw = 0 — an exact +0.0 in
//    the accumulation, same as before); the ladder path lets them ride
//    with τ = 0, contributing zero weight. Either way a padded slot can
//    never generate a NaN/Inf that matters nor extend any loop.
//
// Consequence worth stating: this file must mirror pf_terms_scalar (and
// gamma_q_prefactored's continued fraction) operation by operation. When
// either changes, change this file in lockstep — the bit-identity suite in
// tests/test_kernels.cpp fails loudly if they drift.
#include "kernels/pf_batch_impl.h"

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cny::kernels::detail {

namespace {

using cny::cnt::detail::PfGrid;

constexpr int kLanes = 4;

inline unsigned movemask(__m256d v) {
  return static_cast<unsigned>(_mm256_movemask_pd(v));
}

/// Copies the lanes selected by `bits` out of `v` into `out[lane]`.
inline void save_lanes(__m256d v, unsigned bits, double out[kLanes]) {
  alignas(32) double buf[kLanes];
  _mm256_store_pd(buf, v);
  for (int l = 0; l < kLanes; ++l) {
    if (bits & (1u << l)) out[l] = buf[l];
  }
}

/// Lane-parallel p_series_sum (cnt/pf_kernel.cpp): per-lane series
///   sum = 1 + Σ_i x·inv[1] ··· x·inv[i]
/// frozen at each lane's scalar exit — the eps break (after the update,
/// like the scalar loop) or the lane's own reciprocal-table length.
/// Returns the per-lane frozen sums; lanes outside `act0` hold garbage.
inline __m256d series_sums(__m256d x, __m256d eps, unsigned act0,
                           const long len[kLanes], const double* inv) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d del = one;
  __m256d sum = one;
  alignas(32) double frozen[kLanes] = {1.0, 1.0, 1.0, 1.0};
  unsigned act = act0;
  long min_len = 0;
  for (int l = 0; l < kLanes; ++l) {
    if (act0 & (1u << l)) {
      min_len = min_len == 0 ? len[l] : std::min(min_len, len[l]);
    }
  }
  long i = 1;
  while (act != 0) {
    if (i + 3 < min_len) {
      // Fast region, 4 iterations per trip: the del→sum chain is
      // latency-bound (each step multiplies the previous del), so the
      // per-iteration movemask+branch would otherwise ride the critical
      // path. Compute four steps back to back, check all four break
      // predicates with ONE movemask, and only when some lane broke
      // resolve *which step* it broke at, in order — a lane that breaks
      // at step s keeps sum_s, exactly the value the scalar loop exits
      // with, and whatever steps s+1.. computed for it is discarded.
      const __m256d d1 =
          _mm256_mul_pd(del, _mm256_mul_pd(x, _mm256_set1_pd(inv[i])));
      const __m256d s1 = _mm256_add_pd(sum, d1);
      const __m256d d2 =
          _mm256_mul_pd(d1, _mm256_mul_pd(x, _mm256_set1_pd(inv[i + 1])));
      const __m256d s2 = _mm256_add_pd(s1, d2);
      const __m256d d3 =
          _mm256_mul_pd(d2, _mm256_mul_pd(x, _mm256_set1_pd(inv[i + 2])));
      const __m256d s3 = _mm256_add_pd(s2, d3);
      const __m256d d4 =
          _mm256_mul_pd(d3, _mm256_mul_pd(x, _mm256_set1_pd(inv[i + 3])));
      const __m256d s4 = _mm256_add_pd(s3, d4);
      const __m256d b1 =
          _mm256_cmp_pd(d1, _mm256_mul_pd(s1, eps), _CMP_LT_OQ);
      const __m256d b2 =
          _mm256_cmp_pd(d2, _mm256_mul_pd(s2, eps), _CMP_LT_OQ);
      const __m256d b3 =
          _mm256_cmp_pd(d3, _mm256_mul_pd(s3, eps), _CMP_LT_OQ);
      const __m256d b4 =
          _mm256_cmp_pd(d4, _mm256_mul_pd(s4, eps), _CMP_LT_OQ);
      const unsigned any =
          movemask(_mm256_or_pd(_mm256_or_pd(b1, b2), _mm256_or_pd(b3, b4))) &
          act;
      if (any != 0) {
        const __m256d steps[4] = {b1, b2, b3, b4};
        const __m256d sums[4] = {s1, s2, s3, s4};
        for (int s = 0; s < 4 && act != 0; ++s) {
          const unsigned brk = movemask(steps[s]) & act;
          if (brk != 0) {
            save_lanes(sums[s], brk, frozen);
            act &= ~brk;
          }
        }
      }
      del = d4;
      sum = s4;
      i += 4;
      continue;
    }
    // Expiry region (or short table), one iteration at a time — the
    // scalar loop's shape, `i < len` checked before the body.
    unsigned expired = 0;
    for (int l = 0; l < kLanes; ++l) {
      if ((act & (1u << l)) && i >= len[l]) expired |= 1u << l;
    }
    if (expired != 0) {
      save_lanes(sum, expired, frozen);
      act &= ~expired;
      if (act == 0) break;
    }
    // Broken lanes keep computing harmlessly — their result is already
    // frozen; skipping blends keeps the loop at scalar op parity.
    del = _mm256_mul_pd(del, _mm256_mul_pd(x, _mm256_set1_pd(inv[i])));
    sum = _mm256_add_pd(sum, del);
    const unsigned brk =
        movemask(_mm256_cmp_pd(del, _mm256_mul_pd(sum, eps), _CMP_LT_OQ)) &
        act;
    if (brk != 0) {
      save_lanes(sum, brk, frozen);
      act &= ~brk;
    }
    ++i;
  }
  return _mm256_load_pd(frozen);
}

/// Lane-parallel continued-fraction branch of numeric::gamma_q_prefactored:
/// modified Lentz with the scalar kernel's exact clamp and break sequence,
/// per-lane frozen h at each lane's break (or the 500-iteration cap).
/// Returns q = τ·a·h per lane; lanes outside `act0` hold garbage.
inline __m256d cf_q(double a, __m256d x, __m256d tau, __m256d eps,
                    unsigned act0) {
  constexpr double kCfTiny = 1e-300;
  constexpr int kIterCap = 500;
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d tiny = _mm256_set1_pd(kCfTiny);
  const __m256d ntiny = _mm256_set1_pd(-kCfTiny);
  const __m256d neps = _mm256_sub_pd(_mm256_setzero_pd(), eps);
  const __m256d va = _mm256_set1_pd(a);

  // b = x + 1 − a; c = 1/tiny; d = 1/b; h = d — the scalar seeds.
  __m256d b = _mm256_sub_pd(_mm256_add_pd(x, one), va);
  __m256d c = _mm256_set1_pd(1.0 / kCfTiny);
  __m256d d = _mm256_div_pd(one, b);
  __m256d h = d;
  alignas(32) double frozen[kLanes] = {};
  unsigned act = act0;
  for (int i = 1; i <= kIterCap && act != 0; ++i) {
    const double an = -i * (i - a);
    const __m256d van = _mm256_set1_pd(an);
    b = _mm256_add_pd(b, two);
    d = _mm256_add_pd(_mm256_mul_pd(van, d), b);
    __m256d clamp = _mm256_and_pd(_mm256_cmp_pd(d, ntiny, _CMP_GT_OQ),
                                  _mm256_cmp_pd(d, tiny, _CMP_LT_OQ));
    d = _mm256_blendv_pd(d, tiny, clamp);
    c = _mm256_add_pd(b, _mm256_div_pd(van, c));
    clamp = _mm256_and_pd(_mm256_cmp_pd(c, ntiny, _CMP_GT_OQ),
                          _mm256_cmp_pd(c, tiny, _CMP_LT_OQ));
    c = _mm256_blendv_pd(c, tiny, clamp);
    d = _mm256_div_pd(one, d);
    const __m256d del = _mm256_mul_pd(d, c);
    h = _mm256_mul_pd(h, del);
    const __m256d dev = _mm256_sub_pd(del, one);
    const unsigned brk =
        movemask(_mm256_and_pd(_mm256_cmp_pd(dev, neps, _CMP_GT_OQ),
                               _mm256_cmp_pd(dev, eps, _CMP_LT_OQ))) &
        act;
    if (brk != 0) {
      save_lanes(h, brk, frozen);
      act &= ~brk;
    }
  }
  // A lane that exhausts the iteration cap exits with its latest h — the
  // scalar loop's fall-through.
  if (act != 0) save_lanes(h, act, frozen);
  return _mm256_mul_pd(_mm256_mul_pd(tau, va), _mm256_load_pd(frozen));
}

}  // namespace

void pf_terms_avx2(const PfGrid* const* grids, int m, double z,
                   double rel_tol, cnt::PfKernelResult* out) {
  // Lane-shared invariants guaranteed by the dispatcher: one pitch model,
  // so shape/ladder agree; every grid is on a prefactored path.
  const PfGrid& g0 = *grids[0];
  const double k = g0.k;
  const bool ladder = g0.ladder;
  const long k_int = g0.k_int;

  std::size_t n_max = 0;
  std::size_t inv_max = 0;
  for (int l = 0; l < m; ++l) {
    n_max = std::max(n_max, grids[l]->xs.size());
    inv_max = std::max(inv_max, grids[l]->inv_len);
  }

  // SoA [node][lane] with benign padding (see file header).
  std::vector<double> soa(n_max * kLanes * 6);
  double* X = soa.data();
  double* FW = X + n_max * kLanes;
  double* TAU = FW + n_max * kLanes;
  double* XK = TAU + n_max * kLanes;
  double* QPREV = XK + n_max * kLanes;
  double* Q = QPREV + n_max * kLanes;
  for (std::size_t j = 0; j < n_max * kLanes; ++j) {
    X[j] = 0.0;
    FW[j] = 0.0;
    TAU[j] = 0.0;
    XK[j] = 0.0;
    QPREV[j] = 0.0;
    Q[j] = 0.0;
  }
  long inv_len[kLanes] = {};
  std::size_t n_nodes[kLanes] = {};
  for (int l = 0; l < m; ++l) {
    const PfGrid& g = *grids[l];
    inv_len[l] = static_cast<long>(g.inv_len);
    n_nodes[l] = g.xs.size();
    for (std::size_t j = 0; j < g.xs.size(); ++j) {
      X[j * kLanes + l] = g.xs[j];
      FW[j * kLanes + l] = g.fw[j];
      TAU[j * kLanes + l] = g.tau0[j];
      if (!ladder) XK[j * kLanes + l] = g.xk[j];
    }
  }

  // Per-lane scalar loop state — the exact variables of pf_terms_scalar.
  double acc[kLanes] = {};
  double cum[kLanes] = {};
  double zn[kLanes] = {};
  double rem[kLanes] = {};
  long terms[kLanes] = {};
  bool done[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    done[l] = l >= m;
    if (l < m) {
      acc[l] = grids[l]->p0;
      zn[l] = 1.0;
    }
  }
  // Zeroing a finished lane's τ/weights keeps the dead lane's arithmetic
  // on exact zeros (no denormal crawl) without touching live lanes.
  const auto retire_lane = [&](int l) {
    done[l] = true;
    for (std::size_t j = 0; j < n_max; ++j) {
      TAU[j * kLanes + l] = 0.0;
      XK[j * kLanes + l] = 0.0;
      FW[j * kLanes + l] = 0.0;
    }
  };

  std::vector<double> inv(inv_max);  // per-term reciprocal table, shared
  double shape = 0.0;                // ladder shape counter (n-1)·k
  double lg_prev = 0.0;              // lnΓ((n-1)·k + 1)

  for (long n = 1;; ++n) {
    // Loop head, per lane: the scalar kernel's zn/rem/truncation sequence.
    unsigned pay = 0;
    alignas(32) double eps_l[kLanes] = {};
    for (int l = 0; l < m; ++l) {
      if (done[l]) continue;
      const PfGrid& g = *grids[l];
      if (n > g.n_stop) {
        // Ran the full support (z near 1): the certified remainder is
        // whatever mass the telescoped sum left behind, at the next power.
        rem[l] = zn[l] * z * std::max(0.0, g.mass_tail - cum[l]);
        retire_lane(l);
        continue;
      }
      zn[l] *= z;
      rem[l] = zn[l] * std::max(0.0, g.mass_tail - cum[l]);
      if (rem[l] <= rel_tol * acc[l]) {
        retire_lane(l);
        continue;
      }
      if (!ladder) {
        double eps = acc[l] > 0.0 ? rel_tol * acc[l] / rem[l] : 1e-15;
        eps_l[l] = std::clamp(eps, 1e-15, 1e-6);
      }
      pay |= 1u << l;
    }
    if (pay == 0) break;

    __m256d term_acc = _mm256_setzero_pd();
    if (ladder) {
      for (std::size_t j = 0; j < n_max; ++j) {
        const __m256d x = _mm256_loadu_pd(&X[j * kLanes]);
        __m256d t = _mm256_loadu_pd(&TAU[j * kLanes]);
        __m256d dq = _mm256_setzero_pd();
        for (long s = 0; s < k_int; ++s) {
          dq = _mm256_add_pd(dq, t);
          const double denom = shape + static_cast<double>(s) + 1.0;
          t = _mm256_mul_pd(t, _mm256_div_pd(x, _mm256_set1_pd(denom)));
        }
        _mm256_storeu_pd(&TAU[j * kLanes], t);
        term_acc = _mm256_add_pd(
            term_acc, _mm256_mul_pd(_mm256_loadu_pd(&FW[j * kLanes]), dq));
      }
      shape += static_cast<double>(k_int);
    } else {
      const double a_hi = static_cast<double>(n) * k;
      const double lg_cur = std::lgamma(a_hi + 1.0);
      const double rho = std::exp(lg_prev - lg_cur);
      lg_prev = lg_cur;
      // This term's series denominators, shared by every lane and node.
      // Four divides per vdivpd: IEEE division is elementwise exact, so
      // each entry is the same bits the scalar fill produces — this is the
      // dominating per-term scalar cost, worth the only vectorized table.
      {
        const __m256d vone = _mm256_set1_pd(1.0);
        const __m256d base = _mm256_set1_pd(a_hi);
        const __m256d steps = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
        std::size_t i = 1;
        for (; i + kLanes <= inv.size(); i += kLanes) {
          const __m256d idx = _mm256_add_pd(
              _mm256_set1_pd(static_cast<double>(i)), steps);
          _mm256_storeu_pd(&inv[i],
                           _mm256_div_pd(vone, _mm256_add_pd(base, idx)));
        }
        for (; i < inv.size(); ++i) {
          inv[i] = 1.0 / (a_hi + static_cast<double>(i));
        }
      }
      const __m256d vrho = _mm256_set1_pd(rho);
      const double split = a_hi + 1.0;
      const __m256d vsplit = _mm256_set1_pd(split);
      const __m256d one = _mm256_set1_pd(1.0);
      const __m256d eps = _mm256_load_pd(eps_l);
      const __m256d vpay = _mm256_castsi256_pd(_mm256_set_epi64x(
          (pay & 8u) ? -1LL : 0, (pay & 4u) ? -1LL : 0,
          (pay & 2u) ? -1LL : 0, (pay & 1u) ? -1LL : 0));

      // Pooled convergence pass. The per-node q values of one term are
      // independent of each other — only the pass-2 accumulation order
      // matters — so a branch that lands on a node with poor lane
      // occupancy (1–2 live lanes, the norm once widths spread or a lane
      // retires) does not run the convergence loop then and there:
      // (node, lane) pairs are queued and the loop runs chunks of four
      // pooled across nodes at full occupancy. A branch that already has
      // 3–4 live lanes on a node runs in place, exactly the pre-pooling
      // shape — coherent packets keep their zero-overhead path. Each
      // pair's lane arithmetic is elementwise, so which pairs share a
      // vector cannot change any pair's bits; adjacent nodes have similar
      // x, which keeps chunk iteration counts coherent. Padding slots
      // (j beyond a lane's grid) are never queued — their q stays 0 and
      // contributes the same exact +0.0 through the fw = 0 weight that
      // an in-place evaluation produces.
      alignas(32) double sx[kLanes], stau[kLanes], seps[kLanes];
      long slen[kLanes];
      std::size_t sslot[kLanes];
      int sn = 0;
      const auto flush_series = [&] {
        if (sn == 0) return;
        for (int i = sn; i < kLanes; ++i) {
          sx[i] = 0.0;  // pad: breaks at the first iteration, then idles
          seps[i] = 1.0;
          slen[i] = 2;
        }
        const unsigned mask = (1u << sn) - 1u;
        alignas(32) double sums[kLanes];
        _mm256_store_pd(sums,
                        series_sums(_mm256_load_pd(sx), _mm256_load_pd(seps),
                                    mask, slen, inv.data()));
        for (int i = 0; i < sn; ++i) Q[sslot[i]] = 1.0 - stau[i] * sums[i];
        sn = 0;
      };
      alignas(32) double cx[kLanes], ctau[kLanes], ceps[kLanes];
      std::size_t cslot[kLanes];
      int cn = 0;
      const auto flush_cf = [&] {
        if (cn == 0) return;
        for (int i = cn; i < kLanes; ++i) {
          cx[i] = cx[0];  // pad: duplicate a live pair, result discarded
          ctau[i] = ctau[0];
          ceps[i] = ceps[0];
        }
        const unsigned mask = (1u << cn) - 1u;
        alignas(32) double qs[kLanes];
        _mm256_store_pd(qs, cf_q(a_hi, _mm256_load_pd(cx),
                                 _mm256_load_pd(ctau), _mm256_load_pd(ceps),
                                 mask));
        for (int i = 0; i < cn; ++i) Q[cslot[i]] = qs[i];
        cn = 0;
      };

      // Pass 1: advance τ (vector, all lanes), branch-split each node —
      // x < a+1 → table-backed series, otherwise the CF branch, per lane
      // like the scalar kernel's split — then evaluate in place (3–4 live
      // lanes) or queue (1–2).
      for (std::size_t j = 0; j < n_max; ++j) {
        const __m256d x = _mm256_loadu_pd(&X[j * kLanes]);
        __m256d tau = _mm256_loadu_pd(&TAU[j * kLanes]);
        tau = _mm256_mul_pd(
            tau, _mm256_mul_pd(_mm256_loadu_pd(&XK[j * kLanes]), vrho));
        _mm256_storeu_pd(&TAU[j * kLanes], tau);
        const __m256d smask = _mm256_cmp_pd(x, vsplit, _CMP_LT_OQ);
        unsigned sbits = movemask(smask) & pay;
        unsigned cbits = ~movemask(smask) & pay;
        if (std::popcount(sbits) >= 3) {
          const __m256d sums = series_sums(x, eps, sbits, inv_len, inv.data());
          const __m256d q_hi = _mm256_sub_pd(one, _mm256_mul_pd(tau, sums));
          _mm256_maskstore_pd(&Q[j * kLanes],
                              _mm256_castpd_si256(_mm256_and_pd(smask, vpay)),
                              q_hi);
          sbits = 0;
        }
        if (std::popcount(cbits) >= 3) {
          const __m256d qcf = cf_q(a_hi, x, tau, eps, cbits);
          _mm256_maskstore_pd(
              &Q[j * kLanes],
              _mm256_castpd_si256(_mm256_andnot_pd(smask, vpay)), qcf);
          cbits = 0;
        }
        unsigned rest = sbits | cbits;
        while (rest != 0) {
          const int l = std::countr_zero(rest);
          rest &= rest - 1;
          if (j >= n_nodes[l]) continue;
          const std::size_t slot = j * kLanes + l;
          if (sbits & (1u << l)) {
            sx[sn] = X[slot];
            stau[sn] = TAU[slot];
            seps[sn] = eps_l[l];
            slen[sn] = inv_len[l];
            sslot[sn] = slot;
            if (++sn == kLanes) flush_series();
          } else {
            cx[cn] = X[slot];
            ctau[cn] = TAU[slot];
            ceps[cn] = eps_l[l];
            cslot[cn] = slot;
            if (++cn == kLanes) flush_cf();
          }
        }
      }
      flush_series();
      flush_cf();

      // Pass 2: the scalar kernel's accumulation, in node order.
      for (std::size_t j = 0; j < n_max; ++j) {
        const __m256d q_hi = _mm256_loadu_pd(&Q[j * kLanes]);
        const __m256d qprev = _mm256_loadu_pd(&QPREV[j * kLanes]);
        const __m256d diff = _mm256_sub_pd(q_hi, qprev);
        _mm256_storeu_pd(&QPREV[j * kLanes], q_hi);
        // if (diff > 0) term += fw·diff — the masked add contributes an
        // exact +0.0 elsewhere, which cannot move the accumulator.
        const __m256d pos = _mm256_cmp_pd(diff, _mm256_setzero_pd(),
                                          _CMP_GT_OQ);
        term_acc = _mm256_add_pd(
            term_acc,
            _mm256_and_pd(
                pos, _mm256_mul_pd(_mm256_loadu_pd(&FW[j * kLanes]), diff)));
      }
    }

    alignas(32) double term[kLanes];
    _mm256_store_pd(term, term_acc);
    for (int l = 0; l < m; ++l) {
      if ((pay & (1u << l)) == 0) continue;
      const double t = std::max(0.0, term[l]);
      cum[l] += t;
      acc[l] += t * zn[l];
      ++terms[l];
    }
  }

  for (int l = 0; l < m; ++l) {
    out[l] = {acc[l] / grids[l]->total, terms[l], rem[l] / grids[l]->total};
  }
}

}  // namespace cny::kernels::detail
