// Non-parametric bootstrap confidence intervals for derived statistics
// (e.g. ratio-of-probabilities estimates in the Table 1 reproduction).
#pragma once

#include <functional>
#include <vector>

#include "exec/mc_policy.h"
#include "rng/engine.h"
#include "stats/accumulator.h"

namespace cny::stats {

/// Percentile-bootstrap CI of `statistic` evaluated on resamples of `data`.
/// `level` is two-sided (e.g. 0.95). `policy` shards the resampling loop
/// across RNG streams/threads (exec/parallel_mc.h); the default reproduces
/// the legacy serial loop on `rng` bit-for-bit, and results never depend on
/// the thread count. With policy.n_threads > 1 the `statistic` callable is
/// invoked concurrently from several threads and must be thread-safe (pure
/// functions of the argument are; lambdas mutating captured state are not).
[[nodiscard]] Interval bootstrap_ci(
    const std::vector<double>& data,
    const std::function<double(const std::vector<double>&)>& statistic,
    cny::rng::Xoshiro256& rng, std::size_t resamples = 1000,
    double level = 0.95, const exec::McPolicy& policy = {});

/// Convenience: bootstrap CI of the sample mean.
[[nodiscard]] Interval bootstrap_mean_ci(const std::vector<double>& data,
                                         cny::rng::Xoshiro256& rng,
                                         std::size_t resamples = 1000,
                                         double level = 0.95,
                                         const exec::McPolicy& policy = {});

}  // namespace cny::stats
