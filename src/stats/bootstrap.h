// Non-parametric bootstrap confidence intervals for derived statistics
// (e.g. ratio-of-probabilities estimates in the Table 1 reproduction).
#pragma once

#include <functional>
#include <vector>

#include "rng/engine.h"
#include "stats/accumulator.h"

namespace cny::stats {

/// Percentile-bootstrap CI of `statistic` evaluated on resamples of `data`.
/// `level` is two-sided (e.g. 0.95).
[[nodiscard]] Interval bootstrap_ci(
    const std::vector<double>& data,
    const std::function<double(const std::vector<double>&)>& statistic,
    cny::rng::Xoshiro256& rng, std::size_t resamples = 1000,
    double level = 0.95);

/// Convenience: bootstrap CI of the sample mean.
[[nodiscard]] Interval bootstrap_mean_ci(const std::vector<double>& data,
                                         cny::rng::Xoshiro256& rng,
                                         std::size_t resamples = 1000,
                                         double level = 0.95);

}  // namespace cny::stats
