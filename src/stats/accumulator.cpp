#include "stats/accumulator.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cny::stats {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Accumulator::mean() const { return mean_; }

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::std_error() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double Accumulator::sum() const { return mean_ * static_cast<double>(n_); }

Interval mean_ci(const Accumulator& acc, double z) {
  CNY_EXPECT(z > 0.0);
  const double se = acc.std_error();
  return {acc.mean() - z * se, acc.mean() + z * se};
}

Interval wilson_ci(std::size_t successes, std::size_t trials, double z) {
  CNY_EXPECT(trials > 0);
  CNY_EXPECT(successes <= trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (centre - margin) / denom),
          std::min(1.0, (centre + margin) / denom)};
}

}  // namespace cny::stats
