// Streaming statistics: Welford moments, min/max, and standard-error /
// confidence-interval helpers used to qualify every Monte Carlo estimate.
#pragma once

#include <cstddef>

namespace cny::stats {

/// Numerically stable streaming mean/variance (Welford).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean; 0 for n < 2.
  [[nodiscard]] double std_error() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided confidence interval for a mean, mean ± z * stderr.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] bool contains(double x) const { return lo <= x && x <= hi; }
  [[nodiscard]] double width() const { return hi - lo; }
};

/// Normal-approximation CI on the accumulator's mean (z = 1.96 for 95 %).
[[nodiscard]] Interval mean_ci(const Accumulator& acc, double z = 1.96);

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials` (robust at the p ≈ 0 extremes where the yield probabilities live).
[[nodiscard]] Interval wilson_ci(std::size_t successes, std::size_t trials,
                                 double z = 1.96);

}  // namespace cny::stats
