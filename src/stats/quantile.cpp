#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cny::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  CNY_EXPECT(q > 0.0 && q < 1.0);
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increment_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const auto idx = static_cast<std::size_t>(i);
  return heights_[idx] +
         d / (positions_[idx + 1] - positions_[idx - 1]) *
             ((positions_[idx] - positions_[idx - 1] + d) *
                  (heights_[idx + 1] - heights_[idx]) /
                  (positions_[idx + 1] - positions_[idx]) +
              (positions_[idx + 1] - positions_[idx] - d) *
                  (heights_[idx] - heights_[idx - 1]) /
                  (positions_[idx] - positions_[idx - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const auto idx = static_cast<std::size_t>(i);
  const auto j = static_cast<std::size_t>(static_cast<int>(idx) +
                                          static_cast<int>(d));
  return heights_[idx] + d * (heights_[j] - heights_[idx]) /
                             (positions_[j] - positions_[idx]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double d = desired_[idx] - positions_[idx];
    if ((d >= 1.0 && positions_[idx + 1] - positions_[idx] > 1.0) ||
        (d <= -1.0 && positions_[idx - 1] - positions_[idx] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, sign);
      if (candidate <= heights_[idx - 1] || candidate >= heights_[idx + 1]) {
        candidate = linear(i, sign);
      }
      heights_[idx] = candidate;
      positions_[idx] += sign;
    }
  }
  ++count_;
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile on the sorted prefix.
    std::array<double, 5> copy = heights_;
    std::sort(copy.begin(), copy.begin() + static_cast<long>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return copy[lo] * (1.0 - frac) + copy[hi] * frac;
  }
  return heights_[2];
}

}  // namespace cny::stats
