// P² streaming quantile estimator (Jain & Chlamtac 1985): tracks a single
// quantile in O(1) memory — used for path-delay percentiles where storing
// millions of Monte Carlo samples would dominate memory.
#pragma once

#include <array>
#include <cstddef>

namespace cny::stats {

class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact while fewer than 5 samples were seen.
  [[nodiscard]] double value() const;
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double quantile() const { return q_; }

 private:
  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, double d) const;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increment_{}; // desired-position increments
};

}  // namespace cny::stats
