#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "exec/parallel_mc.h"
#include "util/contracts.h"

namespace cny::stats {

Interval bootstrap_ci(
    const std::vector<double>& data,
    const std::function<double(const std::vector<double>&)>& statistic,
    cny::rng::Xoshiro256& rng, std::size_t resamples, double level,
    const exec::McPolicy& policy) {
  CNY_EXPECT(!data.empty());
  CNY_EXPECT(resamples >= 10);
  CNY_EXPECT(level > 0.0 && level < 1.0);

  // Per-shard resampling; `resample` is shard-local scratch. The partial
  // statistics vectors are concatenated in stream order, and the final sort
  // makes the quantiles independent of that order anyway.
  const auto kernel = [&](unsigned /*stream*/, std::uint64_t shard_resamples,
                          cny::rng::Xoshiro256& shard_rng) {
    std::vector<double> out;
    out.reserve(shard_resamples);
    std::vector<double> resample(data.size());
    for (std::uint64_t r = 0; r < shard_resamples; ++r) {
      for (auto& v : resample) {
        v = data[shard_rng.uniform_index(data.size())];
      }
      out.push_back(statistic(resample));
    }
    return out;
  };

  std::vector<double> stats = exec::run_mc<std::vector<double>>(
      resamples, rng, policy, kernel,
      [](std::vector<double>& into, std::vector<double>&& part) {
        into.insert(into.end(), part.begin(), part.end());
      });
  std::sort(stats.begin(), stats.end());
  const double alpha = 0.5 * (1.0 - level);
  const auto pick = [&](double q) {
    const double pos = q * static_cast<double>(stats.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = std::min(lo + 1, stats.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return stats[lo] * (1.0 - frac) + stats[hi] * frac;
  };
  return {pick(alpha), pick(1.0 - alpha)};
}

Interval bootstrap_mean_ci(const std::vector<double>& data,
                           cny::rng::Xoshiro256& rng, std::size_t resamples,
                           double level, const exec::McPolicy& policy) {
  return bootstrap_ci(
      data,
      [](const std::vector<double>& v) {
        double s = 0.0;
        for (double x : v) s += x;
        return s / static_cast<double>(v.size());
      },
      rng, resamples, level, policy);
}

}  // namespace cny::stats
