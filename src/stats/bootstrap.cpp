#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cny::stats {

Interval bootstrap_ci(
    const std::vector<double>& data,
    const std::function<double(const std::vector<double>&)>& statistic,
    cny::rng::Xoshiro256& rng, std::size_t resamples, double level) {
  CNY_EXPECT(!data.empty());
  CNY_EXPECT(resamples >= 10);
  CNY_EXPECT(level > 0.0 && level < 1.0);

  std::vector<double> stats;
  stats.reserve(resamples);
  std::vector<double> resample(data.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = data[rng.uniform_index(data.size())];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = 0.5 * (1.0 - level);
  const auto pick = [&](double q) {
    const double pos = q * static_cast<double>(stats.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = std::min(lo + 1, stats.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return stats[lo] * (1.0 - frac) + stats[hi] * frac;
  };
  return {pick(alpha), pick(1.0 - alpha)};
}

Interval bootstrap_mean_ci(const std::vector<double>& data,
                           cny::rng::Xoshiro256& rng, std::size_t resamples,
                           double level) {
  return bootstrap_ci(
      data,
      [](const std::vector<double>& v) {
        double s = 0.0;
        for (double x : v) s += x;
        return s / static_cast<double>(v.size());
      },
      rng, resamples, level);
}

}  // namespace cny::stats
