// Fixed-bin histogram — used for the transistor width distribution of
// Fig 2.2a and for validating sampled CNT statistics against analytic models.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace cny::stats {

class Histogram {
 public:
  /// Uniform bins covering [lo, hi) with `bins` buckets; samples outside the
  /// range are counted in underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t n_bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double bin_centre(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const;
  /// Fraction of total weight (including under/overflow) in bin i.
  [[nodiscard]] double fraction(std::size_t i) const;
  /// Fraction of total weight at or below the upper edge of bin i.
  [[nodiscard]] double cumulative_fraction(std::size_t i) const;
  [[nodiscard]] double underflow() const { return underflow_; }
  [[nodiscard]] double overflow() const { return overflow_; }
  [[nodiscard]] double total_weight() const { return total_; }

  /// Simple ASCII bar rendering (for example programs).
  [[nodiscard]] std::string to_ascii(std::size_t max_width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double total_ = 0.0;
};

/// Kolmogorov–Smirnov distance between an empirical sample and a reference
/// CDF evaluated via callback. Sample is copied and sorted internally.
[[nodiscard]] double ks_distance(std::vector<double> sample,
                                 const std::function<double(double)>& cdf);

}  // namespace cny::stats
