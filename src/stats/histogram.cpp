#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/contracts.h"

namespace cny::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  CNY_EXPECT(hi > lo);
  CNY_EXPECT(bins >= 1);
  bin_width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x, double weight) {
  CNY_EXPECT(weight >= 0.0);
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  counts_[std::min(idx, counts_.size() - 1)] += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  CNY_EXPECT(i < counts_.size());
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width_; }

double Histogram::bin_centre(std::size_t i) const {
  return bin_lo(i) + 0.5 * bin_width_;
}

double Histogram::count(std::size_t i) const {
  CNY_EXPECT(i < counts_.size());
  return counts_[i];
}

double Histogram::fraction(std::size_t i) const {
  CNY_EXPECT(i < counts_.size());
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

double Histogram::cumulative_fraction(std::size_t i) const {
  CNY_EXPECT(i < counts_.size());
  double acc = underflow_;
  for (std::size_t b = 0; b <= i; ++b) acc += counts_[b];
  return total_ > 0.0 ? acc / total_ : 0.0;
}

std::string Histogram::to_ascii(std::size_t max_width) const {
  CNY_EXPECT(max_width >= 1);
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "[%8.1f, %8.1f)", bin_lo(i), bin_hi(i));
    const std::size_t bar =
        peak > 0.0 ? static_cast<std::size_t>(
                         std::lround(counts_[i] / peak *
                                     static_cast<double>(max_width)))
                   : 0;
    os << label << ' ' << std::string(bar, '#') << ' '
       << counts_[i] << " (" << fraction(i) * 100.0 << "%)\n";
  }
  return os.str();
}

double ks_distance(std::vector<double> sample,
                   const std::function<double(double)>& cdf) {
  CNY_EXPECT(!sample.empty());
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::fabs(f - lo), std::fabs(hi - f)));
  }
  return d;
}

}  // namespace cny::stats
