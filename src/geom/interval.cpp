#include "geom/interval.h"

#include <algorithm>

#include "util/contracts.h"

namespace cny::geom {

Interval Interval::intersect(const Interval& o) const {
  return {std::max(lo, o.lo), std::min(hi, o.hi)};
}

Interval Interval::hull(const Interval& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

IntervalSet::IntervalSet(const std::vector<Interval>& intervals) {
  for (const auto& iv : intervals) add(iv);
}

void IntervalSet::add(Interval iv) {
  if (iv.empty()) return;
  // Find insertion window of overlapping/adjacent components and merge.
  std::vector<Interval> merged;
  merged.reserve(parts_.size() + 1);
  bool inserted = false;
  for (const auto& p : parts_) {
    if (p.hi < iv.lo) {
      merged.push_back(p);
    } else if (iv.hi < p.lo) {
      if (!inserted) {
        merged.push_back(iv);
        inserted = true;
      }
      merged.push_back(p);
    } else {
      iv = iv.hull(p);
    }
  }
  if (!inserted) merged.push_back(iv);
  parts_ = std::move(merged);
}

double IntervalSet::measure() const {
  double m = 0.0;
  for (const auto& p : parts_) m += p.length();
  return m;
}

bool IntervalSet::contains(double x) const {
  const auto it = std::upper_bound(
      parts_.begin(), parts_.end(), x,
      [](double v, const Interval& iv) { return v < iv.lo; });
  if (it == parts_.begin()) return false;
  return std::prev(it)->contains(x);
}

double union_measure(std::vector<Interval> intervals) {
  std::erase_if(intervals, [](const Interval& iv) { return iv.empty(); });
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  double total = 0.0;
  double cur_lo = intervals.front().lo;
  double cur_hi = intervals.front().hi;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    const auto& iv = intervals[i];
    if (iv.lo > cur_hi) {
      total += cur_hi - cur_lo;
      cur_lo = iv.lo;
      cur_hi = iv.hi;
    } else {
      cur_hi = std::max(cur_hi, iv.hi);
    }
  }
  total += cur_hi - cur_lo;
  return total;
}

}  // namespace cny::geom
