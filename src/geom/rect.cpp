#include "geom/rect.h"

#include <cmath>

#include "util/contracts.h"

namespace cny::geom {

Grid1D::Grid1D(double origin, double pitch) : origin_(origin), pitch_(pitch) {
  CNY_EXPECT(pitch > 0.0);
}

long Grid1D::index_of(double v) const {
  return std::lround((v - origin_) / pitch_);
}

double Grid1D::line(long index) const {
  return origin_ + pitch_ * static_cast<double>(index);
}

double Grid1D::snap(double v) const { return line(index_of(v)); }

double Grid1D::offset(double v) const { return v - snap(v); }

}  // namespace cny::geom
