// Axis-aligned 2-D geometry for cell layouts and growth-field rendering.
// Convention throughout the library (matches Fig 3.1/3.2 of the paper):
//   x — the CNT growth direction (along a standard-cell row)
//   y — perpendicular to the CNTs; a CNFET's *width* W extends in y.
#pragma once

#include "geom/interval.h"

namespace cny::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;
  friend bool operator==(const Point&, const Point&) = default;
};

struct Rect {
  double x = 0.0;  ///< left edge
  double y = 0.0;  ///< bottom edge
  double w = 0.0;  ///< extent in x
  double h = 0.0;  ///< extent in y

  [[nodiscard]] double left() const { return x; }
  [[nodiscard]] double right() const { return x + w; }
  [[nodiscard]] double bottom() const { return y; }
  [[nodiscard]] double top() const { return y + h; }
  [[nodiscard]] double area() const { return w * h; }
  [[nodiscard]] bool empty() const { return w <= 0.0 || h <= 0.0; }

  [[nodiscard]] Interval x_span() const { return {x, x + w}; }
  [[nodiscard]] Interval y_span() const { return {y, y + h}; }

  [[nodiscard]] bool contains(const Point& p) const {
    return p.x >= x && p.x < x + w && p.y >= y && p.y < y + h;
  }
  [[nodiscard]] bool overlaps(const Rect& o) const {
    return x_span().overlaps(o.x_span()) && y_span().overlaps(o.y_span());
  }
  [[nodiscard]] Rect translated(double dx, double dy) const {
    return {x + dx, y + dy, w, h};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Uniform 1-D grid (used for the globally defined aligned-active grid of
/// Sec 3.2: active-region y-coordinates must land on grid rows).
class Grid1D {
 public:
  Grid1D(double origin, double pitch);

  /// Nearest grid line to `v`.
  [[nodiscard]] double snap(double v) const;
  /// Signed distance from `v` to the nearest grid line.
  [[nodiscard]] double offset(double v) const;
  /// Index of the nearest grid line (can be negative).
  [[nodiscard]] long index_of(double v) const;
  [[nodiscard]] double line(long index) const;
  [[nodiscard]] double pitch() const { return pitch_; }
  [[nodiscard]] double origin() const { return origin_; }

 private:
  double origin_;
  double pitch_;
};

}  // namespace cny::geom
