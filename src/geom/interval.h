// 1-D intervals and interval sets. The yield engine lives on intervals:
// a CNFET's channel is the interval its active region spans in the
// CNT-perpendicular direction, and union/overlap measure on those intervals
// drives every correlation computation.
#pragma once

#include <cstddef>
#include <vector>

namespace cny::geom {

/// Closed-open interval [lo, hi); empty when hi <= lo.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double length() const { return hi > lo ? hi - lo : 0.0; }
  [[nodiscard]] bool empty() const { return hi <= lo; }
  [[nodiscard]] bool contains(double x) const { return x >= lo && x < hi; }
  [[nodiscard]] bool overlaps(const Interval& o) const {
    return lo < o.hi && o.lo < hi;
  }
  [[nodiscard]] Interval intersect(const Interval& o) const;
  /// Smallest interval containing both (even if disjoint).
  [[nodiscard]] Interval hull(const Interval& o) const;
  [[nodiscard]] Interval shifted(double dy) const { return {lo + dy, hi + dy}; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Maintains a set of disjoint intervals under union; supports total measure
/// queries. Used for P(∩ empty-window events) = exp(-λ · |∪ windows|).
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(const std::vector<Interval>& intervals);

  void add(Interval iv);
  void clear() { parts_.clear(); }

  [[nodiscard]] double measure() const;
  [[nodiscard]] bool contains(double x) const;
  [[nodiscard]] std::size_t n_components() const { return parts_.size(); }
  [[nodiscard]] const std::vector<Interval>& components() const {
    return parts_;
  }

 private:
  std::vector<Interval> parts_;  // sorted, disjoint, non-empty
};

/// Measure of the union of arbitrary intervals (one-shot convenience).
[[nodiscard]] double union_measure(std::vector<Interval> intervals);

}  // namespace cny::geom
