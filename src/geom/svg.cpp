#include "geom/svg.h"

#include <fstream>
#include <sstream>

#include "util/contracts.h"

namespace cny::geom {

SvgWriter::SvgWriter(Rect view, double pixel_width) : view_(view) {
  CNY_EXPECT(!view.empty());
  CNY_EXPECT(pixel_width > 0.0);
  scale_ = pixel_width / view.w;
}

double SvgWriter::sx(double x) const { return (x - view_.x) * scale_; }

double SvgWriter::sy(double y) const {
  // Flip: user +y (up) maps to SVG -y (down).
  return (view_.top() - y) * scale_;
}

void SvgWriter::rect(const Rect& r, const std::string& fill,
                     const std::string& stroke, double stroke_width,
                     double opacity) {
  std::ostringstream os;
  os << "<rect x=\"" << sx(r.left()) << "\" y=\"" << sy(r.top()) << "\" width=\""
     << r.w * scale_ << "\" height=\"" << r.h * scale_ << "\" fill=\"" << fill
     << "\" stroke=\"" << stroke << "\" stroke-width=\"" << stroke_width * scale_
     << "\" fill-opacity=\"" << opacity << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::line(Point a, Point b, const std::string& stroke,
                     double width) {
  std::ostringstream os;
  os << "<line x1=\"" << sx(a.x) << "\" y1=\"" << sy(a.y) << "\" x2=\""
     << sx(b.x) << "\" y2=\"" << sy(b.y) << "\" stroke=\"" << stroke
     << "\" stroke-width=\"" << width * scale_ << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::text(Point at, const std::string& content, double size_user,
                     const std::string& fill) {
  std::ostringstream os;
  os << "<text x=\"" << sx(at.x) << "\" y=\"" << sy(at.y) << "\" font-size=\""
     << size_user * scale_ << "\" fill=\"" << fill
     << "\" font-family=\"sans-serif\">" << content << "</text>";
  elements_.push_back(os.str());
}

std::string SvgWriter::str() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << view_.w * scale_
     << "\" height=\"" << view_.h * scale_ << "\" viewBox=\"0 0 "
     << view_.w * scale_ << ' ' << view_.h * scale_ << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& e : elements_) os << e << '\n';
  os << "</svg>\n";
  return os.str();
}

bool SvgWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str();
  return static_cast<bool>(out);
}

}  // namespace cny::geom
