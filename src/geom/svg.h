// Minimal SVG writer so the example programs can emit Fig 3.1-style growth
// renders and Fig 3.2-style before/after cell layouts.
#pragma once

#include <string>
#include <vector>

#include "geom/rect.h"

namespace cny::geom {

/// Accumulates SVG elements in user coordinates (nm) and renders with a
/// uniform scale and a flipped y-axis (layout convention: +y up).
class SvgWriter {
 public:
  /// `view` is the user-space region to display; `pixel_width` fixes scale.
  SvgWriter(Rect view, double pixel_width = 800.0);

  void rect(const Rect& r, const std::string& fill,
            const std::string& stroke = "none", double stroke_width = 0.0,
            double opacity = 1.0);
  void line(Point a, Point b, const std::string& stroke, double width);
  void text(Point at, const std::string& content, double size_user,
            const std::string& fill = "#202020");

  /// Serialises the document.
  [[nodiscard]] std::string str() const;

  /// Writes to a file, returning false on I/O failure.
  bool save(const std::string& path) const;

 private:
  [[nodiscard]] double sx(double x) const;
  [[nodiscard]] double sy(double y) const;

  Rect view_;
  double scale_;
  std::vector<std::string> elements_;
};

}  // namespace cny::geom
