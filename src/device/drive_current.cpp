#include "device/drive_current.h"

#include <cmath>

#include "cnt/count_distribution.h"
#include "rng/distributions.h"
#include "util/contracts.h"

namespace cny::device {

CurrentStats simulate_on_current(const cnt::PitchModel& pitch,
                                 const cnt::ProcessParams& process,
                                 const cnt::DiameterModel& diameter,
                                 const TubeCurrentModel& tube_model,
                                 double width, std::size_t n_devices,
                                 rng::Xoshiro256& rng) {
  CNY_EXPECT(width > 0.0);
  CNY_EXPECT(n_devices >= 2);

  stats::Accumulator current;
  stats::Accumulator count;
  std::size_t failures = 0;
  const double pf = process.p_fail();

  for (std::size_t dev = 0; dev < n_devices; ++dev) {
    double i_on = 0.0;
    long n_functional = 0;
    double y = pitch.sample_equilibrium(rng);
    while (y < width) {
      if (!rng::sample_bernoulli(rng, pf)) {
        i_on += tube_model.current(diameter.sample(rng));
        ++n_functional;
      }
      y += pitch.sample(rng);
    }
    count.add(static_cast<double>(n_functional));
    if (n_functional == 0) {
      ++failures;
    } else {
      current.add(i_on);
    }
  }

  CurrentStats out;
  out.devices = n_devices;
  out.failures = failures;
  out.mean_count = count.mean();
  out.mean = current.mean();
  out.stddev = current.stddev();
  out.cv = out.mean > 0.0 ? out.stddev / out.mean : 0.0;
  return out;
}

double analytic_current_cv(const cnt::PitchModel& pitch,
                           const cnt::ProcessParams& process,
                           const cnt::DiameterModel& diameter,
                           const TubeCurrentModel& tube_model, double width) {
  CNY_EXPECT(width > 0.0);
  // Functional-tube count K: thinning of N(W) with retention q = 1 - p_f.
  //   E[K]   = q·E[N]
  //   Var(K) = q^2·Var(N) + q(1-q)·E[N]
  const cnt::CountDistribution dist(pitch, width);
  const double q = 1.0 - process.p_fail();
  const double mean_k = q * dist.mean();
  const double var_k = q * q * dist.variance() + q * (1.0 - q) * dist.mean();

  // Per-tube current moments under the lognormal diameter law: X = c·d.
  const double c = tube_model.current_per_diameter;
  const double mean_x = c * diameter.mean;
  const double var_x = c * c * (diameter.mean * diameter.cv) *
                       (diameter.mean * diameter.cv);

  const double mean_s = mean_k * mean_x;
  const double var_s = mean_k * var_x + var_k * mean_x * mean_x;
  CNY_ENSURE(mean_s > 0.0);
  return std::sqrt(var_s) / mean_s;
}

}  // namespace cny::device
