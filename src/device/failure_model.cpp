#include "device/failure_model.h"

#include <cmath>

#include "exec/thread_pool.h"
#include "util/contracts.h"

namespace cny::device {

FailureModel::FailureModel(cnt::PitchModel pitch, cnt::ProcessParams process)
    : pitch_(pitch), process_(process) {
  process_.validate();
}

FailureModel::FailureModel(const FailureModel& other)
    : pitch_(other.pitch_), process_(other.process_) {
  // pitch_/process_ are immutable after construction (assignment is
  // deleted), so reading them above without other's lock is safe; only the
  // mutable caches need it.
  const std::lock_guard<std::mutex> lock(other.mutex_);
  cache_ = other.cache_;
  interp_ = other.interp_;
}

std::shared_ptr<const FailureModel::LogPfInterp> FailureModel::interpolant()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return interp_;
}

double FailureModel::p_f(double width) const {
  CNY_EXPECT(width >= 0.0);
  // One lock acquisition covers both the interpolant check and the memo
  // lookup — this is the hottest read path in the solvers.
  std::shared_ptr<const LogPfInterp> interp;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (interp_ && width >= interp_->w_lo && width <= interp_->w_hi) {
      interp = interp_;
    } else if (const auto it = cache_.find(width); it != cache_.end()) {
      return it->second;
    }
  }
  if (interp) return std::exp(interp->log_pf(width));
  return p_f_exact(width);
}

double FailureModel::p_f_exact(double width) const {
  CNY_EXPECT(width >= 0.0);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = cache_.find(width); it != cache_.end()) {
      return it->second;
    }
  }
  // Evaluate outside the lock: the PGF costs ~10^4 incomplete gammas, and
  // p_F is a pure function, so concurrent duplicate work is merely wasted
  // effort, never an inconsistency.
  const cnt::CountDistribution dist(pitch_, width);
  const double value = dist.pgf(process_.p_fail());
  const std::lock_guard<std::mutex> lock(mutex_);
  cache_.emplace(width, value);
  return value;
}

void FailureModel::enable_interpolation(double w_lo, double w_hi,
                                        std::size_t knots,
                                        unsigned n_threads) const {
  CNY_EXPECT(w_lo > 0.0 && w_hi > w_lo);
  CNY_EXPECT(knots >= 4);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (interp_ && interp_->w_lo <= w_lo && interp_->w_hi >= w_hi) return;
  }
  // Geometric knot spacing: the exact evaluation costs O(W) (the count
  // distribution carries ~W/μ_S terms), while log p_F(W) is nearly linear
  // at large W (Fig 2.1) — so spend the knots where they are cheap AND
  // where the curvature lives.
  std::vector<double> xs(knots), ys(knots);
  const double ratio = w_hi / w_lo;
  for (std::size_t i = 0; i < knots; ++i) {
    xs[i] = w_lo * std::pow(ratio, static_cast<double>(i) /
                                       static_cast<double>(knots - 1));
  }
  xs.back() = w_hi;  // guard against pow() rounding shrinking the range
  exec::parallel_for(knots, n_threads,
                     [&](std::size_t i) { ys[i] = std::log(p_f_exact(xs[i])); });
  auto built = std::make_shared<const LogPfInterp>(
      LogPfInterp{w_lo, w_hi, numeric::MonotoneCubic(std::move(xs), std::move(ys))});
  const std::lock_guard<std::mutex> lock(mutex_);
  // If a racing builder already installed a table covering this request,
  // keep it; otherwise install ours so the requested range is served.
  // (One table at a time: a later call for a different range replaces it.)
  if (!interp_ || !(interp_->w_lo <= w_lo && interp_->w_hi >= w_hi)) {
    interp_ = std::move(built);
  }
}

bool FailureModel::interpolation_covers(double width) const {
  const auto interp = interpolant();
  return interp && width >= interp->w_lo && width <= interp->w_hi;
}

double FailureModel::p_f_poisson_closed_form(double width) const {
  CNY_EXPECT(width >= 0.0);
  CNY_EXPECT_MSG(pitch_.is_poisson(),
                 "closed form only valid for CV = 1 (Poisson) pitch");
  return std::exp(-width * pitch_.density() * (1.0 - process_.p_fail()));
}

stats::Interval FailureModel::p_f_monte_carlo(double width,
                                              std::size_t n_devices,
                                              rng::Xoshiro256& rng) const {
  CNY_EXPECT(width > 0.0);
  CNY_EXPECT(n_devices >= 1);
  // Margin above/below the window so stationarity is honest even though we
  // start the renewal at the band edge.
  const double margin = 0.0;
  std::size_t failures = 0;
  const cnt::DirectionalGrowth growth(pitch_, process_, /*cnt_length=*/1.0e6);
  for (std::size_t i = 0; i < n_devices; ++i) {
    const auto ys = growth.functional_positions(rng, -margin, width + margin);
    bool any = false;
    for (double y : ys) {
      if (y >= 0.0 && y < width) {
        any = true;
        break;
      }
    }
    if (!any) ++failures;
  }
  return stats::wilson_ci(failures, n_devices);
}

double FailureModel::mean_count(double width) const {
  CNY_EXPECT(width >= 0.0);
  return width * pitch_.density();
}

}  // namespace cny::device
