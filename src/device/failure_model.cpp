#include "device/failure_model.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "cnt/pf_kernel.h"
#include "exec/thread_pool.h"
#include "kernels/pf_batch.h"
#include "util/contracts.h"

namespace cny::device {

namespace {

/// Sorted-vector memo lookup: iterator to the entry for `width`, or the
/// insertion point when absent.
auto memo_find(std::vector<std::pair<double, double>>& memo, double width) {
  return std::lower_bound(
      memo.begin(), memo.end(), width,
      [](const std::pair<double, double>& e, double w) { return e.first < w; });
}

}  // namespace

FailureModel::FailureModel(cnt::PitchModel pitch, cnt::ProcessParams process)
    : pitch_(pitch), process_(process) {
  process_.validate();
}

FailureModel::FailureModel(const FailureModel& other)
    : pitch_(other.pitch_), process_(other.process_) {
  // pitch_/process_ are immutable after construction (assignment is
  // deleted), so reading them above without synchronisation is safe; the
  // mutable caches are copied through their own synchronisation.
  auto interp = other.interp_.load(std::memory_order_acquire);
  const bool has = interp != nullptr;
  interp_.store(std::move(interp), std::memory_order_release);
  has_interp_.store(has, std::memory_order_release);
  const std::shared_lock<std::shared_mutex> lock(other.memo_mutex_);
  memo_ = other.memo_;
}

std::shared_ptr<const FailureModel::LogPfInterp> FailureModel::interpolant()
    const {
  return interp_.load(std::memory_order_acquire);
}

double FailureModel::p_f(double width) const {
  CNY_EXPECT(width >= 0.0);
  // Hottest read path in the solvers: a relaxed flag probe, then (only
  // with a table installed) one atomic shared_ptr load — no lock either
  // way. Concurrent enable_interpolation() publishes a fully built table
  // before raising the flag, so a snapshot is always safe to evaluate;
  // racing readers that miss the flag simply take the exact path.
  if (has_interp_.load(std::memory_order_relaxed)) {
    if (const auto interp = interp_.load(std::memory_order_acquire);
        interp && width >= interp->w_lo && width <= interp->w_hi) {
      return std::exp(interp->log_pf(width));
    }
  }
  return p_f_exact(width);
}

double FailureModel::p_f_exact(double width) const {
  CNY_EXPECT(width >= 0.0);
  {
    const std::shared_lock<std::shared_mutex> lock(memo_mutex_);
    if (const auto it = memo_find(memo_, width);
        it != memo_.end() && it->first == width) {
      return it->second;
    }
  }
  // Evaluate outside any lock: p_F is a pure function, so concurrent
  // duplicate work is merely wasted effort, never an inconsistency.
  const double value =
      cnt::pf_truncated(pitch_, width, process_.p_fail()).value;
  const std::unique_lock<std::shared_mutex> lock(memo_mutex_);
  if (const auto it = memo_find(memo_, width);
      it == memo_.end() || it->first != width) {
    memo_.insert(it, {width, value});
  }
  return value;
}

std::vector<double> FailureModel::p_f_exact_batch(
    std::span<const double> widths) const {
  std::vector<double> out(widths.size());
  // Memo probe for the whole batch under one shared lock; the misses are
  // evaluated in a single batched kernel pass. Batch evaluation is
  // bit-identical to per-width pf_truncated (the kernels contract), so a
  // width computes to the same bytes whichever call pattern filled the
  // memo first.
  std::vector<std::size_t> miss;
  {
    const std::shared_lock<std::shared_mutex> lock(memo_mutex_);
    for (std::size_t i = 0; i < widths.size(); ++i) {
      CNY_EXPECT(widths[i] >= 0.0);
      if (const auto it = memo_find(memo_, widths[i]);
          it != memo_.end() && it->first == widths[i]) {
        out[i] = it->second;
      } else {
        miss.push_back(i);
      }
    }
  }
  if (miss.empty()) return out;
  std::vector<double> miss_w(miss.size());
  for (std::size_t j = 0; j < miss.size(); ++j) miss_w[j] = widths[miss[j]];
  const auto results =
      kernels::pf_truncated_batch(pitch_, miss_w, process_.p_fail());
  const std::unique_lock<std::shared_mutex> lock(memo_mutex_);
  for (std::size_t j = 0; j < miss.size(); ++j) {
    out[miss[j]] = results[j].value;
    if (const auto it = memo_find(memo_, miss_w[j]);
        it == memo_.end() || it->first != miss_w[j]) {
      memo_.insert(it, {miss_w[j], results[j].value});
    }
  }
  return out;
}

std::vector<double> FailureModel::p_f_batch(
    std::span<const double> widths) const {
  // Split by interpolant coverage exactly as per-width p_f() would, so
  // each output is bit-identical to the scalar call.
  std::shared_ptr<const LogPfInterp> interp;
  if (has_interp_.load(std::memory_order_relaxed)) {
    interp = interp_.load(std::memory_order_acquire);
  }
  std::vector<double> out(widths.size());
  std::vector<std::size_t> exact_idx;
  std::vector<double> exact_w;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    CNY_EXPECT(widths[i] >= 0.0);
    if (interp && widths[i] >= interp->w_lo && widths[i] <= interp->w_hi) {
      out[i] = std::exp(interp->log_pf(widths[i]));
    } else {
      exact_idx.push_back(i);
      exact_w.push_back(widths[i]);
    }
  }
  if (!exact_idx.empty()) {
    const auto exact = p_f_exact_batch(exact_w);
    for (std::size_t j = 0; j < exact_idx.size(); ++j) {
      out[exact_idx[j]] = exact[j];
    }
  }
  return out;
}

void FailureModel::enable_interpolation(double w_lo, double w_hi,
                                        std::size_t knots,
                                        unsigned n_threads) const {
  CNY_EXPECT(w_lo > 0.0 && w_hi > w_lo);
  CNY_EXPECT(knots >= 4);
  if (const auto cur = interp_.load(std::memory_order_acquire);
      cur && cur->w_lo <= w_lo && cur->w_hi >= w_hi) {
    return;
  }
  // Geometric knot spacing: the exact evaluation cost grows with W (the
  // truncated kernel still walks O(p_f·W/μ_S) terms), while log p_F(W) is
  // nearly linear at large W (Fig 2.1) — so spend the knots where they are
  // cheap AND where the curvature lives.
  std::vector<double> xs(knots), ys(knots);
  const double ratio = w_hi / w_lo;
  for (std::size_t i = 0; i < knots; ++i) {
    xs[i] = w_lo * std::pow(ratio, static_cast<double>(i) /
                                       static_cast<double>(knots - 1));
  }
  xs.back() = w_hi;  // guard against pow() rounding shrinking the range
  // All knots go through the batched kernel: lane-packed chunks share the
  // per-term Γ-ratio/table work across four widths at a time, and the
  // chunks shard across threads. Chunks of two packets keep every thread's
  // unit of work wide enough to pack full lanes.
  constexpr std::size_t kChunk = 8;
  const std::size_t n_chunks = (knots + kChunk - 1) / kChunk;
  exec::parallel_for(n_chunks, n_threads, [&](std::size_t c) {
    const std::size_t lo = c * kChunk;
    const std::size_t len = std::min(kChunk, knots - lo);
    const auto vals =
        p_f_exact_batch(std::span<const double>(xs).subspan(lo, len));
    for (std::size_t j = 0; j < len; ++j) ys[lo + j] = std::log(vals[j]);
  });
  auto built = std::make_shared<const LogPfInterp>(
      LogPfInterp{w_lo, w_hi, numeric::MonotoneCubic(std::move(xs), std::move(ys))});
  // If a racing builder already installed a table covering this request,
  // keep it; otherwise publish ours so the requested range is served.
  // (One table at a time: a later call for a different range replaces it.)
  auto cur = interp_.load(std::memory_order_acquire);
  while (!(cur && cur->w_lo <= w_lo && cur->w_hi >= w_hi)) {
    if (interp_.compare_exchange_weak(cur, built, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      break;
    }
  }
  has_interp_.store(true, std::memory_order_release);
}

bool FailureModel::interpolation_covers(double width) const {
  const auto interp = interpolant();
  return interp && width >= interp->w_lo && width <= interp->w_hi;
}

double FailureModel::p_f_poisson_closed_form(double width) const {
  CNY_EXPECT(width >= 0.0);
  CNY_EXPECT_MSG(pitch_.is_poisson(),
                 "closed form only valid for CV = 1 (Poisson) pitch");
  return std::exp(-width * pitch_.density() * (1.0 - process_.p_fail()));
}

stats::Interval FailureModel::p_f_monte_carlo(double width,
                                              std::size_t n_devices,
                                              rng::Xoshiro256& rng,
                                              double margin) const {
  CNY_EXPECT(width > 0.0);
  CNY_EXPECT(n_devices >= 1);
  CNY_EXPECT(margin >= 0.0);
  std::size_t failures = 0;
  const cnt::DirectionalGrowth growth(pitch_, process_, /*cnt_length=*/1.0e6);
  for (std::size_t i = 0; i < n_devices; ++i) {
    const auto ys = growth.functional_positions(rng, -margin, width + margin);
    bool any = false;
    for (double y : ys) {
      if (y >= 0.0 && y < width) {
        any = true;
        break;
      }
    }
    if (!any) ++failures;
  }
  return stats::wilson_ci(failures, n_devices);
}

double FailureModel::mean_count(double width) const {
  CNY_EXPECT(width >= 0.0);
  return width * pitch_.density();
}

}  // namespace cny::device
