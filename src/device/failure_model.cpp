#include "device/failure_model.h"

#include <cmath>

#include "util/contracts.h"

namespace cny::device {

FailureModel::FailureModel(cnt::PitchModel pitch, cnt::ProcessParams process)
    : pitch_(pitch), process_(process) {
  process_.validate();
}

double FailureModel::p_f(double width) const {
  CNY_EXPECT(width >= 0.0);
  if (const auto it = cache_.find(width); it != cache_.end()) {
    return it->second;
  }
  const cnt::CountDistribution dist(pitch_, width);
  const double value = dist.pgf(process_.p_fail());
  cache_.emplace(width, value);
  return value;
}

double FailureModel::p_f_poisson_closed_form(double width) const {
  CNY_EXPECT(width >= 0.0);
  CNY_EXPECT_MSG(pitch_.is_poisson(),
                 "closed form only valid for CV = 1 (Poisson) pitch");
  return std::exp(-width * pitch_.density() * (1.0 - process_.p_fail()));
}

stats::Interval FailureModel::p_f_monte_carlo(double width,
                                              std::size_t n_devices,
                                              rng::Xoshiro256& rng) const {
  CNY_EXPECT(width > 0.0);
  CNY_EXPECT(n_devices >= 1);
  // Margin above/below the window so stationarity is honest even though we
  // start the renewal at the band edge.
  const double margin = 0.0;
  std::size_t failures = 0;
  const cnt::DirectionalGrowth growth(pitch_, process_, /*cnt_length=*/1.0e6);
  for (std::size_t i = 0; i < n_devices; ++i) {
    const auto ys = growth.functional_positions(rng, -margin, width + margin);
    bool any = false;
    for (double y : ys) {
      if (y >= 0.0 && y < width) {
        any = true;
        break;
      }
    }
    if (!any) ++failures;
  }
  return stats::wilson_ci(failures, n_devices);
}

double FailureModel::mean_count(double width) const {
  CNY_EXPECT(width >= 0.0);
  return width * pitch_.density();
}

}  // namespace cny::device
