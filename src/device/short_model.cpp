#include "device/short_model.h"

#include <cmath>

#include "cnt/count_distribution.h"
#include "numeric/roots.h"
#include "util/contracts.h"

namespace cny::device {

ShortModel::ShortModel(cnt::PitchModel pitch, cnt::ProcessParams process)
    : pitch_(pitch), process_(process) {
  process_.validate();
}

double ShortModel::p_short_device(double width) const {
  CNY_EXPECT(width >= 0.0);
  const double p_short = process_.p_short();
  if (p_short == 0.0 || width == 0.0) return 0.0;
  // Each of the N tubes is a surviving short independently w.p. p_short;
  // the device is clean iff all tubes are non-shorts. The truncated kernel
  // evaluates the PGF without materialising the PMF — the scenario engine
  // calls this inside the combined W_min solve and the required-p_Rm
  // bisection, where the full-PMF build (~70 ms per query) would dominate
  // the whole flow.
  return 1.0 - cnt::CountDistribution::pgf_at(pitch_, width, 1.0 - p_short);
}

double ShortModel::mean_shorts(double width) const {
  CNY_EXPECT(width >= 0.0);
  return process_.p_short() * width * pitch_.density();
}

double ShortModel::expected_susceptible(double width,
                                        double n_devices) const {
  CNY_EXPECT(n_devices >= 0.0);
  return n_devices * p_short_device(width);
}

double ShortModel::chip_yield_shorts(double width, double n_devices,
                                     double p_noise_fails) const {
  CNY_EXPECT(p_noise_fails >= 0.0 && p_noise_fails <= 1.0);
  const double p_gate = p_short_device(width) * p_noise_fails;
  CNY_ENSURE(p_gate < 1.0);
  return std::exp(n_devices * std::log1p(-p_gate));
}

double ShortModel::required_p_rm(const cnt::PitchModel& pitch,
                                 double p_metallic, double width,
                                 double n_devices, double p_noise_fails,
                                 double yield_desired) {
  CNY_EXPECT(yield_desired > 0.0 && yield_desired < 1.0);
  CNY_EXPECT(p_metallic > 0.0 && p_metallic <= 1.0);

  const auto yield_at = [&](double p_rm) {
    cnt::ProcessParams process;
    process.p_metallic = p_metallic;
    process.p_remove_m = p_rm;
    const ShortModel model(pitch, process);
    return model.chip_yield_shorts(width, n_devices, p_noise_fails);
  };
  if (yield_at(0.0) >= yield_desired) return 0.0;
  CNY_EXPECT_MSG(yield_at(1.0) >= yield_desired,
                 "even perfect removal cannot reach the yield target");
  // Yield is increasing in p_Rm; bisect on the complement for bracketing.
  const auto res = cny::numeric::brent(
      [&](double p_rm) { return yield_at(p_rm) - yield_desired; }, 0.0, 1.0,
      1e-10);
  CNY_ENSURE(res.converged);
  return res.x;
}

}  // namespace cny::device
