// Surviving-metallic-CNT (short / noise-margin) failure mode.
//
// The paper's count-failure analysis assumes p_Rm ≈ 1; this extension
// models what the paper cites from [Zhang 09b]: with imperfect removal,
// a device keeps each grown m-CNT with probability p_short = p_m(1 - p_Rm),
// and a surviving m-CNT shorts source to drain, degrading noise margins.
// A noise-susceptible gate becomes a yield loss only with probability
// `p_noise_fails` (signal restoration in following CMOS stages [Zolotov 02]
// usually absorbs it — Sec 2.1).
//
// The module answers the question behind the paper's "p_Rm > 99.99 % is
// required for practical VLSI" remark: given a chip and a susceptibility
// budget, how selective must removal be?
#pragma once

#include "cnt/pitch_model.h"
#include "cnt/process.h"

namespace cny::device {

class ShortModel {
 public:
  ShortModel(cnt::PitchModel pitch, cnt::ProcessParams process);

  /// Probability a device of width W retains >= 1 metallic CNT:
  ///   p_S(W) = 1 - G_{N(W)}(1 - p_short)   (same PGF machinery as eq 2.2).
  [[nodiscard]] double p_short_device(double width) const;

  /// Expected surviving m-CNT count in a device of width W.
  [[nodiscard]] double mean_shorts(double width) const;

  /// Expected number of noise-susceptible gates on a chip of
  /// `n_devices` devices of width W.
  [[nodiscard]] double expected_susceptible(double width,
                                            double n_devices) const;

  /// Chip yield against the short mode: every susceptible gate
  /// independently causes a logic failure with probability p_noise_fails.
  [[nodiscard]] double chip_yield_shorts(double width, double n_devices,
                                         double p_noise_fails) const;

  /// Smallest p_Rm such that the chip short-mode yield meets
  /// `yield_desired` (inverts the above in p_Rm; all other process
  /// parameters held). Returns a value in [0, 1].
  [[nodiscard]] static double required_p_rm(const cnt::PitchModel& pitch,
                                            double p_metallic, double width,
                                            double n_devices,
                                            double p_noise_fails,
                                            double yield_desired);

  [[nodiscard]] const cnt::ProcessParams& process() const { return process_; }

 private:
  cnt::PitchModel pitch_;
  cnt::ProcessParams process_;
};

}  // namespace cny::device
