// CNFET drive-current model with statistical averaging.
//
// [Raychowdhury 09, Zhang 09a/b] observe that for every CNT-specific
// imperfection, the on-current variation of a CNFET obeys
//     σ(I_on) / μ(I_on) ∝ 1/√N
// where N is the CNT count. This module reproduces that behaviour from
// first principles: per-tube currents depend on diameter (chirality), tubes
// are i.i.d., and the device current is the sum over functional tubes.
//
// This is an extension beyond the paper's count-failure focus; the paper
// cites statistical averaging as the reason upsizing works at all (Sec 1).
#pragma once

#include "cnt/growth.h"
#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "rng/engine.h"
#include "stats/accumulator.h"

namespace cny::device {

/// Per-tube on-current as a function of diameter (simple linear chirality
/// proxy: I = i_per_nm_diameter * d), saturating at zero for d <= 0.
struct TubeCurrentModel {
  double current_per_diameter = 20.0;  ///< µA per nm of diameter (order [Deng 07])

  [[nodiscard]] double current(double diameter_nm) const {
    return diameter_nm > 0.0 ? current_per_diameter * diameter_nm : 0.0;
  }
};

struct CurrentStats {
  double mean = 0.0;        ///< µA
  double stddev = 0.0;      ///< µA
  double cv = 0.0;          ///< σ/μ
  double mean_count = 0.0;  ///< average functional tubes per device
  std::size_t failures = 0; ///< devices with zero functional tubes
  std::size_t devices = 0;
};

/// Samples `n_devices` CNFETs of width `width` and accumulates I_on
/// statistics (functional tubes only; failed devices contribute I = 0 to the
/// failure counter but are excluded from the conditional current moments,
/// matching how σ(I_on)/μ(I_on) is reported in the literature).
[[nodiscard]] CurrentStats simulate_on_current(
    const cnt::PitchModel& pitch, const cnt::ProcessParams& process,
    const cnt::DiameterModel& diameter, const TubeCurrentModel& tube_model,
    double width, std::size_t n_devices, rng::Xoshiro256& rng);

/// Analytic CV of I_on given the count distribution and per-tube moments:
/// for a random sum S = Σ_{i<=K} X_i with K the functional-tube count,
///   Var(S) = E[K]·Var(X) + Var(K)·E[X]^2.
[[nodiscard]] double analytic_current_cv(const cnt::PitchModel& pitch,
                                         const cnt::ProcessParams& process,
                                         const cnt::DiameterModel& diameter,
                                         const TubeCurrentModel& tube_model,
                                         double width);

}  // namespace cny::device
