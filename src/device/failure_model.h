// CNFET CNT-count failure model (Sec 2.1, eq. 2.2).
//
// A CNFET of width W contains N(W) CNTs before m-CNT removal; each CNT
// independently "fails" (is metallic, or is semiconducting but inadvertently
// removed) with probability p_f. The device suffers a CNT count failure when
// every CNT fails:
//
//   p_F(W) = Σ_N  p_f^N · Prob{N(W) = N}  =  G_{N(W)}(p_f)
//
// i.e. the count distribution's probability generating function at p_f,
// evaluated through the truncated node-major kernel of cnt/pf_kernel.h.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <span>
#include <utility>
#include <vector>

#include "cnt/count_distribution.h"
#include "cnt/growth.h"
#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "numeric/interp.h"
#include "rng/engine.h"
#include "stats/accumulator.h"

namespace cny::device {

class FailureModel {
 public:
  FailureModel(cnt::PitchModel pitch, cnt::ProcessParams process);

  // The memo cache and interpolant are internally synchronised, so a
  // member-wise default copy is not available; copies share nothing.
  // Assignment is deleted on purpose: pitch/process are immutable after
  // construction, which is what makes their lock-free reads on the hot
  // p_f path safe under concurrency.
  FailureModel(const FailureModel& other);
  FailureModel& operator=(const FailureModel&) = delete;

  [[nodiscard]] const cnt::PitchModel& pitch() const { return pitch_; }
  [[nodiscard]] const cnt::ProcessParams& process() const { return process_; }
  [[nodiscard]] double p_fail_per_cnt() const { return process_.p_fail(); }

  /// Analytic p_F(W), eq. (2.2). Results are memoised per width because the
  /// solvers re-query the same widths. The read path is lock-light so
  /// concurrent solver threads never serialise: when interpolation is
  /// enabled and `width` falls inside its range, an atomically loaded
  /// interpolant snapshot answers with no lock at all; otherwise the memo
  /// is consulted under a shared (reader) lock.
  [[nodiscard]] double p_f(double width) const;

  /// Always the analytic evaluation (the certified-truncation PGF kernel,
  /// exact to ~1e-12 relative), bypassing any enabled interpolant. Memoised
  /// and thread-safe.
  [[nodiscard]] double p_f_exact(double width) const;

  /// Batched p_f(): one result per width, each bit-identical to the
  /// corresponding scalar p_f(width) call. Interpolant-covered widths read
  /// the table; the remaining exact evaluations of one call are merged
  /// into a single batched kernel pass (kernels::pf_truncated_batch) that
  /// shares per-term setup across widths, then land in the memo as usual.
  [[nodiscard]] std::vector<double> p_f_batch(
      std::span<const double> widths) const;

  /// Batched p_f_exact(): the same merged-kernel evaluation with the
  /// interpolant bypassed for every width.
  [[nodiscard]] std::vector<double> p_f_exact_batch(
      std::span<const double> widths) const;

  /// Builds (first call) a monotone-cubic interpolant of log p_F over
  /// geometrically spaced knots in [w_lo, w_hi] and routes subsequent
  /// in-range p_f() queries through it. One table build (`knots` exact
  /// evaluations, parallelised over `n_threads`) replaces the per-strategy
  /// per-design re-evaluation cost in batched flows; geometric spacing
  /// concentrates knots at small W, where the exact evaluation is cheap and
  /// log p_F actually curves. Thread-safe and idempotent: later calls with
  /// a range already covered are no-ops, and readers racing the build
  /// simply fall back to the exact path.
  void enable_interpolation(double w_lo, double w_hi, std::size_t knots = 65,
                            unsigned n_threads = 1) const;

  /// Whether an interpolant is installed (and, if so, covering `width`).
  [[nodiscard]] bool interpolation_covers(double width) const;

  /// Closed form for the Poisson (CV = 1) pitch special case:
  ///   p_F = exp(-W/μ_S · (1 - p_f)).
  /// Throws unless the pitch model is Poisson; used for validation.
  [[nodiscard]] double p_f_poisson_closed_form(double width) const;

  /// Monte Carlo estimate of p_F(W): grows tube populations over many
  /// device instances and counts devices with zero functional tubes.
  /// `margin` (nm, >= 0) extends the grown band above and below the window
  /// so stationarity is honest even though the renewal starts at the band
  /// edge (the equilibrium first-gap draw already guarantees it; a nonzero
  /// margin makes the check independent of that guarantee). Practical only
  /// when p_F is not too rare (validation at small W / large p_f).
  [[nodiscard]] stats::Interval p_f_monte_carlo(double width,
                                                std::size_t n_devices,
                                                rng::Xoshiro256& rng,
                                                double margin = 0.0) const;

  /// Expected CNT count in a device of width W (= W/μ_S for the stationary
  /// process).
  [[nodiscard]] double mean_count(double width) const;

 private:
  struct LogPfInterp {
    double w_lo = 0.0;
    double w_hi = 0.0;
    numeric::MonotoneCubic log_pf;
  };

  [[nodiscard]] std::shared_ptr<const LogPfInterp> interpolant() const;

  cnt::PitchModel pitch_;
  cnt::ProcessParams process_;
  /// Interpolant snapshot, swapped in atomically so the hottest read path
  /// (in-range p_f under the batch flows) takes no lock whatsoever.
  /// `has_interp_` fronts it: a relaxed bool load keeps the no-interpolant
  /// p_f() fast path from paying the shared_ptr atomic (which libstdc++
  /// backs with a spinlock pool) on every memoised query.
  mutable std::atomic<bool> has_interp_{false};
  mutable std::atomic<std::shared_ptr<const LogPfInterp>> interp_;
  /// Exact-value memo: widths sorted for binary search, readers under a
  /// shared lock so concurrent cache hits proceed in parallel.
  mutable std::shared_mutex memo_mutex_;
  mutable std::vector<std::pair<double, double>> memo_;
};

}  // namespace cny::device
