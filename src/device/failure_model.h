// CNFET CNT-count failure model (Sec 2.1, eq. 2.2).
//
// A CNFET of width W contains N(W) CNTs before m-CNT removal; each CNT
// independently "fails" (is metallic, or is semiconducting but inadvertently
// removed) with probability p_f. The device suffers a CNT count failure when
// every CNT fails:
//
//   p_F(W) = Σ_N  p_f^N · Prob{N(W) = N}  =  G_{N(W)}(p_f)
//
// i.e. the count distribution's probability generating function at p_f.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "cnt/count_distribution.h"
#include "cnt/growth.h"
#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "numeric/interp.h"
#include "rng/engine.h"
#include "stats/accumulator.h"

namespace cny::device {

class FailureModel {
 public:
  FailureModel(cnt::PitchModel pitch, cnt::ProcessParams process);

  // The memo cache and interpolant are guarded by an internal mutex, so a
  // mutex-free default copy is not available; copies share nothing.
  // Assignment is deleted on purpose: pitch/process are immutable after
  // construction, which is what makes their lock-free reads on the hot
  // p_f path safe under concurrency.
  FailureModel(const FailureModel& other);
  FailureModel& operator=(const FailureModel&) = delete;

  [[nodiscard]] const cnt::PitchModel& pitch() const { return pitch_; }
  [[nodiscard]] const cnt::ProcessParams& process() const { return process_; }
  [[nodiscard]] double p_fail_per_cnt() const { return process_.p_fail(); }

  /// Analytic p_F(W), eq. (2.2). Results are memoised per width because the
  /// count distribution behind each evaluation costs ~10^4 incomplete-gamma
  /// evaluations and the solvers re-query the same widths. Thread-safe:
  /// concurrent callers (the batch flow, the parallel MC kernels) may hit
  /// the cache simultaneously. When interpolation is enabled and `width`
  /// falls inside its range, the cached interpolant answers instead.
  [[nodiscard]] double p_f(double width) const;

  /// Always the exact PGF evaluation, bypassing any enabled interpolant
  /// (still memoised and thread-safe).
  [[nodiscard]] double p_f_exact(double width) const;

  /// Builds (first call) a monotone-cubic interpolant of log p_F over
  /// geometrically spaced knots in [w_lo, w_hi] and routes subsequent
  /// in-range p_f() queries through it. One table build (`knots` exact
  /// evaluations, parallelised over `n_threads`) replaces the per-strategy
  /// per-design re-evaluation cost in batched flows; geometric spacing
  /// concentrates knots at small W, where the exact evaluation is cheap and
  /// log p_F actually curves. Thread-safe and idempotent: later calls with
  /// a range already covered are no-ops, and readers racing the build
  /// simply fall back to the exact path.
  void enable_interpolation(double w_lo, double w_hi, std::size_t knots = 65,
                            unsigned n_threads = 1) const;

  /// Whether an interpolant is installed (and, if so, covering `width`).
  [[nodiscard]] bool interpolation_covers(double width) const;

  /// Closed form for the Poisson (CV = 1) pitch special case:
  ///   p_F = exp(-W/μ_S · (1 - p_f)).
  /// Throws unless the pitch model is Poisson; used for validation.
  [[nodiscard]] double p_f_poisson_closed_form(double width) const;

  /// Monte Carlo estimate of p_F(W): grows tube populations over many
  /// device instances and counts devices with zero functional tubes.
  /// Practical only when p_F is not too rare (validation at small W /
  /// large p_f).
  [[nodiscard]] stats::Interval p_f_monte_carlo(double width,
                                                std::size_t n_devices,
                                                rng::Xoshiro256& rng) const;

  /// Expected CNT count in a device of width W (= W/μ_S for the stationary
  /// process).
  [[nodiscard]] double mean_count(double width) const;

 private:
  struct LogPfInterp {
    double w_lo = 0.0;
    double w_hi = 0.0;
    numeric::MonotoneCubic log_pf;
  };

  [[nodiscard]] std::shared_ptr<const LogPfInterp> interpolant() const;

  cnt::PitchModel pitch_;
  cnt::ProcessParams process_;
  mutable std::mutex mutex_;                       ///< guards cache_/interp_
  mutable std::map<double, double> cache_;
  mutable std::shared_ptr<const LogPfInterp> interp_;
};

}  // namespace cny::device
