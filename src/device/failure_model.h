// CNFET CNT-count failure model (Sec 2.1, eq. 2.2).
//
// A CNFET of width W contains N(W) CNTs before m-CNT removal; each CNT
// independently "fails" (is metallic, or is semiconducting but inadvertently
// removed) with probability p_f. The device suffers a CNT count failure when
// every CNT fails:
//
//   p_F(W) = Σ_N  p_f^N · Prob{N(W) = N}  =  G_{N(W)}(p_f)
//
// i.e. the count distribution's probability generating function at p_f.
#pragma once

#include <map>
#include <memory>

#include "cnt/count_distribution.h"
#include "cnt/growth.h"
#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "rng/engine.h"
#include "stats/accumulator.h"

namespace cny::device {

class FailureModel {
 public:
  FailureModel(cnt::PitchModel pitch, cnt::ProcessParams process);

  [[nodiscard]] const cnt::PitchModel& pitch() const { return pitch_; }
  [[nodiscard]] const cnt::ProcessParams& process() const { return process_; }
  [[nodiscard]] double p_fail_per_cnt() const { return process_.p_fail(); }

  /// Analytic p_F(W), eq. (2.2). Results are memoised per width because the
  /// count distribution behind each evaluation costs ~10^4 incomplete-gamma
  /// evaluations and the solvers re-query the same widths.
  [[nodiscard]] double p_f(double width) const;

  /// Closed form for the Poisson (CV = 1) pitch special case:
  ///   p_F = exp(-W/μ_S · (1 - p_f)).
  /// Throws unless the pitch model is Poisson; used for validation.
  [[nodiscard]] double p_f_poisson_closed_form(double width) const;

  /// Monte Carlo estimate of p_F(W): grows tube populations over many
  /// device instances and counts devices with zero functional tubes.
  /// Practical only when p_F is not too rare (validation at small W /
  /// large p_f).
  [[nodiscard]] stats::Interval p_f_monte_carlo(double width,
                                                std::size_t n_devices,
                                                rng::Xoshiro256& rng) const;

  /// Expected CNT count in a device of width W (= W/μ_S for the stationary
  /// process).
  [[nodiscard]] double mean_count(double width) const;

 private:
  cnt::PitchModel pitch_;
  cnt::ProcessParams process_;
  mutable std::map<double, double> cache_;
};

}  // namespace cny::device
