// First-order CNFET gate timing under CNT-induced drive variation.
//
// The paper's Sec 1 motivation: CNT imperfections cause drive-current
// variations, hence circuit *performance* variations, and statistical
// averaging (σ/μ ∝ 1/√N) is why wide devices behave. This module closes
// that loop quantitatively: gate delay d = k_d · C_load / I_on, with I_on
// the random sum over functional tubes (drive_current.h), propagated along
// an n-stage logic path. Used to show the performance side-effect of the
// W_min upsizing flow (wider devices also tighten the delay distribution).
#pragma once

#include "cnt/growth.h"
#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "device/drive_current.h"
#include "rng/engine.h"

namespace cny::device {

struct TimingParams {
  /// Load capacitance per nm of fan-out gate width (aF/nm) — a lumped
  /// technology constant; only ratios matter for the statistics here.
  double cap_per_nm = 0.8;
  /// Delay constant k_d in ps·µA/aF units folded to 1 (delay is reported
  /// in arbitrary-but-consistent units).
  double k_delay = 1.0;
};

struct PathDelayStats {
  double mean = 0.0;
  double stddev = 0.0;
  double cv = 0.0;
  double p99 = 0.0;           ///< 99th percentile path delay
  double p99_over_mean = 0.0; ///< timing-margin ratio designers care about
  std::size_t failed_paths = 0;  ///< paths containing a dead (0-tube) gate
};

/// Simulates `n_paths` logic paths of `stages` identical gates of width
/// `width` driving identical loads; per-gate delay = k·C/I with I the
/// simulated tube-sum current. Gates with zero functional tubes mark the
/// path failed (infinite delay) and are excluded from the moments.
[[nodiscard]] PathDelayStats simulate_path_delay(
    const cnt::PitchModel& pitch, const cnt::ProcessParams& process,
    const cnt::DiameterModel& diameter, const TubeCurrentModel& tube,
    const TimingParams& timing, double width, int stages,
    std::size_t n_paths, rng::Xoshiro256& rng);

/// First-order analytic CV of an n-stage path delay: per-stage delay CV
/// equals the drive CV (delay ∝ 1/I, to first order), and independent
/// stages average: CV_path ≈ CV_gate / √n.
[[nodiscard]] double analytic_path_delay_cv(const cnt::PitchModel& pitch,
                                            const cnt::ProcessParams& process,
                                            const cnt::DiameterModel& diameter,
                                            const TubeCurrentModel& tube,
                                            double width, int stages);

}  // namespace cny::device
