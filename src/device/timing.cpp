#include "device/timing.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/distributions.h"
#include "stats/accumulator.h"
#include "util/contracts.h"

namespace cny::device {

PathDelayStats simulate_path_delay(const cnt::PitchModel& pitch,
                                   const cnt::ProcessParams& process,
                                   const cnt::DiameterModel& diameter,
                                   const TubeCurrentModel& tube,
                                   const TimingParams& timing, double width,
                                   int stages, std::size_t n_paths,
                                   rng::Xoshiro256& rng) {
  CNY_EXPECT(width > 0.0);
  CNY_EXPECT(stages >= 1);
  CNY_EXPECT(n_paths >= 2);
  CNY_EXPECT(timing.cap_per_nm > 0.0 && timing.k_delay > 0.0);

  const double pf = process.p_fail();
  const double load = timing.cap_per_nm * width;

  stats::Accumulator acc;
  std::vector<double> delays;
  delays.reserve(n_paths);
  std::size_t failed = 0;

  for (std::size_t p = 0; p < n_paths; ++p) {
    double path_delay = 0.0;
    bool dead = false;
    for (int s = 0; s < stages && !dead; ++s) {
      double i_on = 0.0;
      double y = pitch.sample_equilibrium(rng);
      while (y < width) {
        if (!rng::sample_bernoulli(rng, pf)) {
          i_on += tube.current(diameter.sample(rng));
        }
        y += pitch.sample(rng);
      }
      if (i_on <= 0.0) {
        dead = true;
      } else {
        path_delay += timing.k_delay * load / i_on;
      }
    }
    if (dead) {
      ++failed;
    } else {
      acc.add(path_delay);
      delays.push_back(path_delay);
    }
  }

  PathDelayStats out;
  out.failed_paths = failed;
  if (!delays.empty()) {
    out.mean = acc.mean();
    out.stddev = acc.stddev();
    out.cv = out.mean > 0.0 ? out.stddev / out.mean : 0.0;
    std::sort(delays.begin(), delays.end());
    const auto idx = static_cast<std::size_t>(0.99 * (delays.size() - 1));
    out.p99 = delays[idx];
    out.p99_over_mean = out.mean > 0.0 ? out.p99 / out.mean : 0.0;
  }
  return out;
}

double analytic_path_delay_cv(const cnt::PitchModel& pitch,
                              const cnt::ProcessParams& process,
                              const cnt::DiameterModel& diameter,
                              const TubeCurrentModel& tube, double width,
                              int stages) {
  CNY_EXPECT(stages >= 1);
  const double gate_cv =
      analytic_current_cv(pitch, process, diameter, tube, width);
  return gate_cv / std::sqrt(static_cast<double>(stages));
}

}  // namespace cny::device
