// Standard-cell data model.
//
// A cell is a named template (e.g. AOI222_X1) with transistors grouped into
// *active regions* — the rectangles of semiconducting material that CNTs
// must cross (Fig 1.1). The aligned-active transform of Sec 3.2 operates on
// these rectangles. Geometry convention: x runs along the standard-cell row
// (the CNT growth direction), y is vertical; a transistor of width W needs an
// active region of y-extent W.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geom/rect.h"

namespace cny::celllib {

enum class Polarity { N, P };
enum class CellKind { Combinational, Buffer, Sequential };

[[nodiscard]] const char* to_string(Polarity p);
[[nodiscard]] const char* to_string(CellKind k);
[[nodiscard]] Polarity polarity_from_string(const std::string& s);
[[nodiscard]] CellKind kind_from_string(const std::string& s);

struct Transistor {
  std::string name;       ///< e.g. "MN0"
  Polarity polarity = Polarity::N;
  double width = 0.0;     ///< FET width in nm (y-extent of its channel)
  int region = 0;         ///< index into Cell::regions
};

struct ActiveRegion {
  Polarity polarity = Polarity::N;
  geom::Rect rect;        ///< within-cell placement; rect.h is the FET width
};

struct Pin {
  std::string name;
  double x = 0.0;         ///< x position within the cell (I/O pins are kept
                          ///< in place by the transform, Sec 3.3)
};

class Cell {
 public:
  std::string name;        ///< "AOI222_X1"
  std::string family;      ///< "AOI222"
  int drive = 1;           ///< 1, 2, 4, ...
  CellKind kind = CellKind::Combinational;
  double width = 0.0;      ///< cell x-extent, nm
  double height = 0.0;     ///< cell y-extent, nm
  std::vector<Transistor> transistors;
  std::vector<ActiveRegion> regions;
  std::vector<Pin> pins;

  /// Widths of all transistors (order matches `transistors`).
  [[nodiscard]] std::vector<double> transistor_widths() const;

  /// Smallest transistor width in the cell; 0 for an empty cell.
  [[nodiscard]] double min_transistor_width() const;

  /// Indices of regions with the given polarity.
  [[nodiscard]] std::vector<int> regions_of(Polarity p) const;

  /// Indices of regions containing at least one transistor whose width is
  /// <= `threshold` (the paper's *critical active regions*, Sec 3.2 step 2).
  [[nodiscard]] std::vector<int> critical_regions(Polarity p,
                                                  double threshold) const;

  /// Largest transistor width inside region `r` (its required y-extent).
  [[nodiscard]] double region_fet_width(int r) const;

  /// Consistency checks: region indices valid, widths positive, regions
  /// inside the cell box. Throws ContractViolation on failure.
  void validate() const;
};

}  // namespace cny::celllib
