// Template-driven synthetic standard-cell library generation.
//
// We cannot ship the Nangate 45 nm Open Cell Library GDS or a commercial
// 65 nm library, so we synthesise geometrically realistic stand-ins whose
// *aggregate statistics* (cell count, drive-strength spread, transistor width
// distribution, active-region structure) are calibrated to the regimes the
// paper reports. The downstream algorithms consume only this geometry, so a
// faithful statistical stand-in preserves every experiment's behaviour
// (substitution table in DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "celllib/library.h"

namespace cny::celllib {

/// Describes one logic family to instantiate at several drive strengths.
struct FamilyTemplate {
  std::string family;       ///< "AOI222"
  CellKind kind = CellKind::Combinational;
  int fanin = 2;            ///< number of logic inputs
  int n_fets = 4;           ///< NMOS transistor count
  int p_fets = 4;           ///< PMOS transistor count
  int n_stack = 1;          ///< deepest series stack in the pull-down
  int p_stack = 1;          ///< deepest series stack in the pull-up
  int n_regions = 1;        ///< active regions for NMOS
  int p_regions = 1;        ///< active regions for PMOS
  /// When true, the extra regions of a polarity sit at *different y*
  /// (vertically folded layout) and overlap in x — the geometry that makes
  /// single-grid aligned-active enforcement widen the cell (Sec 3.3).
  bool folded = false;
  std::vector<int> drives;  ///< e.g. {1, 2, 4}
};

/// Process-rule knobs for geometry synthesis.
struct GeometryRules {
  double node_nm = 45.0;
  double cell_height = 1400.0;      ///< nm between rails
  double min_width_n = 90.0;        ///< minimum NMOS FET width, nm
  double unit_width_n = 120.0;      ///< X1 drive-unit NMOS width, nm
  double beta = 1.5;                ///< P/N width ratio
  double gate_pitch = 190.0;        ///< poly pitch: x space per transistor
  double active_spacing = 140.0;    ///< min x gap between active regions
  double cell_margin = 95.0;        ///< x margin at both cell edges
  double region_y_base_n = 150.0;   ///< lowest n-active bottom edge
  double region_y_gap = 60.0;       ///< y gap between folded regions
  /// Extra pseudo-random y offset spread (per family) applied to active
  /// region bottom edges — models template diversity across a hand-crafted
  /// library; this spread is what limits correlation *before* the
  /// aligned-active restriction (Table 1, middle column).
  double region_y_jitter = 95.0;
  /// Folded-template stagger: x gap between vertically adjacent regions
  /// (legal below the same-y spacing rule) drawn per family from
  /// [fold_gap_min, fold_gap_max], and the maximum fraction of a region's
  /// width that may x-overlap its fold neighbour.
  double fold_gap_min = 20.0;
  double fold_gap_max = 60.0;
  double fold_overlap_max = 0.12;
};

/// Deterministically generates a library from templates. `seed_label` feeds
/// the per-family y-jitter hash (same label -> identical library).
[[nodiscard]] Library generate_library(const std::string& name,
                                       const GeometryRules& rules,
                                       const std::vector<FamilyTemplate>& families,
                                       std::uint64_t seed_label);

/// The 134-cell Nangate-45-like library used for the paper's main flow.
[[nodiscard]] Library make_nangate45_like();

/// The 775-cell commercial-65-nm-like library of Sec 3.3 / Table 2 —
/// a richer family mix with more folded high-fan-in and sequential cells.
[[nodiscard]] Library make_commercial65_like();

/// Geometry rules matching each generator (exposed for tests/benches).
[[nodiscard]] GeometryRules nangate45_rules();
[[nodiscard]] GeometryRules commercial65_rules();

}  // namespace cny::celllib
