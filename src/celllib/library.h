// Library container: a named set of cells at a technology node, plus the
// aggregate statistics the yield flow consumes and linear technology scaling
// (Sec 2.2: "the CNFET width distribution scales linearly with technology
// node, while the inter-CNT pitch remains constant").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "celllib/cell.h"

namespace cny::celllib {

class Library {
 public:
  Library() = default;
  Library(std::string name, double node_nm);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double node_nm() const { return node_nm_; }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  [[nodiscard]] std::vector<Cell>& cells() { return cells_; }

  void add(Cell cell);

  /// Cell lookup by exact name; nullptr when absent.
  [[nodiscard]] const Cell* find(const std::string& name) const;

  /// Throws if any cell fails validation or names collide.
  void validate() const;

  /// Minimum transistor width over the whole library.
  [[nodiscard]] double min_transistor_width() const;

  /// Returns a copy with all geometry (cell boxes, regions, transistor
  /// widths, pin positions) multiplied by `factor` and the node relabelled.
  [[nodiscard]] Library scaled(double new_node_nm) const;

  /// Applies `fn` to every transistor width in the library (used by the
  /// upsizing step: w -> max(w, W_min)); region y-extents are re-derived so
  /// geometry stays consistent.
  void upsize_transistors(const std::function<double(double)>& fn);

 private:
  std::string name_;
  double node_nm_ = 0.0;
  std::vector<Cell> cells_;
};

}  // namespace cny::celllib
