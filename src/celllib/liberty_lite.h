// Liberty-lite: a compact line-oriented text format for cell libraries, so
// generated/transformed libraries can be saved, diffed, and reloaded.
//
//   library "nangate45_like" node 45
//   cell AOI222_X1 family AOI222 drive 1 kind comb width 2090 height 1400
//     region N x 95 y 200 w 380 h 155
//     transistor MN0 N w 155 region 0
//     pin A1 x 120.5
//   end
//   ...
//   endlibrary
#pragma once

#include <iosfwd>
#include <string>

#include "celllib/library.h"

namespace cny::celllib {

/// Serialises a library (lossless for the in-memory model).
void write_liberty_lite(const Library& lib, std::ostream& os);
[[nodiscard]] std::string to_liberty_lite(const Library& lib);

/// Parses a library; throws ContractViolation with a line number on
/// malformed input.
[[nodiscard]] Library read_liberty_lite(std::istream& is);
[[nodiscard]] Library from_liberty_lite(const std::string& text);

/// File helpers (throw on I/O failure).
void save_liberty_lite(const Library& lib, const std::string& path);
[[nodiscard]] Library load_liberty_lite(const std::string& path);

}  // namespace cny::celllib
