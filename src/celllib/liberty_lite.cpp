#include "celllib/liberty_lite.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/contracts.h"
#include "util/strings.h"

namespace cny::celllib {

using cny::util::parse_double;
using cny::util::parse_long;
using cny::util::split_ws;

void write_liberty_lite(const Library& lib, std::ostream& os) {
  os.precision(17);
  os << "library \"" << lib.name() << "\" node " << lib.node_nm() << "\n";
  for (const auto& c : lib.cells()) {
    os << "cell " << c.name << " family " << c.family << " drive " << c.drive
       << " kind " << to_string(c.kind) << " width " << c.width << " height "
       << c.height << "\n";
    for (const auto& r : c.regions) {
      os << "  region " << to_string(r.polarity) << " x " << r.rect.x << " y "
         << r.rect.y << " w " << r.rect.w << " h " << r.rect.h << "\n";
    }
    for (const auto& t : c.transistors) {
      os << "  transistor " << t.name << ' ' << to_string(t.polarity) << " w "
         << t.width << " region " << t.region << "\n";
    }
    for (const auto& p : c.pins) {
      os << "  pin " << p.name << " x " << p.x << "\n";
    }
    os << "end\n";
  }
  os << "endlibrary\n";
}

std::string to_liberty_lite(const Library& lib) {
  std::ostringstream os;
  write_liberty_lite(lib, os);
  return os.str();
}

Library read_liberty_lite(std::istream& is) {
  std::string line;
  int line_no = 0;
  Library lib;
  Cell current;
  bool in_cell = false;
  bool have_library = false;

  const auto fail = [&](const std::string& msg) {
    CNY_EXPECT_MSG(false,
                   "liberty-lite line " + std::to_string(line_no) + ": " + msg);
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = split_ws(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& kw = tokens[0];

    if (kw == "library") {
      if (tokens.size() != 4 || tokens[2] != "node") fail("bad library header");
      std::string name = tokens[1];
      if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
        name = name.substr(1, name.size() - 2);
      }
      lib = Library(name, parse_double(tokens[3]));
      have_library = true;
    } else if (kw == "cell") {
      if (!have_library) fail("cell before library header");
      if (in_cell) fail("nested cell");
      if (tokens.size() != 12) fail("bad cell header");
      current = Cell{};
      current.name = tokens[1];
      if (tokens[2] != "family") fail("expected 'family'");
      current.family = tokens[3];
      current.drive = static_cast<int>(parse_long(tokens[5]));
      current.kind = kind_from_string(tokens[7]);
      current.width = parse_double(tokens[9]);
      current.height = parse_double(tokens[11]);
      in_cell = true;
    } else if (kw == "region") {
      if (!in_cell) fail("region outside cell");
      if (tokens.size() != 10) fail("bad region line");
      ActiveRegion r;
      r.polarity = polarity_from_string(tokens[1]);
      r.rect = geom::Rect{parse_double(tokens[3]), parse_double(tokens[5]),
                          parse_double(tokens[7]), parse_double(tokens[9])};
      current.regions.push_back(r);
    } else if (kw == "transistor") {
      if (!in_cell) fail("transistor outside cell");
      if (tokens.size() != 7) fail("bad transistor line");
      Transistor t;
      t.name = tokens[1];
      t.polarity = polarity_from_string(tokens[2]);
      t.width = parse_double(tokens[4]);
      t.region = static_cast<int>(parse_long(tokens[6]));
      current.transistors.push_back(std::move(t));
    } else if (kw == "pin") {
      if (!in_cell) fail("pin outside cell");
      if (tokens.size() != 4) fail("bad pin line");
      current.pins.push_back(Pin{tokens[1], parse_double(tokens[3])});
    } else if (kw == "end") {
      if (!in_cell) fail("end outside cell");
      current.validate();
      lib.add(std::move(current));
      current = Cell{};
      in_cell = false;
    } else if (kw == "endlibrary") {
      if (in_cell) fail("endlibrary inside cell");
      lib.validate();
      return lib;
    } else {
      fail("unknown keyword: " + kw);
    }
  }
  fail("missing endlibrary");
  return lib;  // unreachable
}

Library from_liberty_lite(const std::string& text) {
  std::istringstream is(text);
  return read_liberty_lite(is);
}

void save_liberty_lite(const Library& lib, const std::string& path) {
  std::ofstream os(path);
  CNY_EXPECT_MSG(static_cast<bool>(os), "cannot open for write: " + path);
  write_liberty_lite(lib, os);
  CNY_EXPECT_MSG(static_cast<bool>(os), "write failed: " + path);
}

Library load_liberty_lite(const std::string& path) {
  std::ifstream is(path);
  CNY_EXPECT_MSG(static_cast<bool>(is), "cannot open for read: " + path);
  return read_liberty_lite(is);
}

}  // namespace cny::celllib
