#include "celllib/cell.h"

#include <algorithm>

#include "util/contracts.h"

namespace cny::celllib {

const char* to_string(Polarity p) { return p == Polarity::N ? "N" : "P"; }

const char* to_string(CellKind k) {
  switch (k) {
    case CellKind::Combinational: return "comb";
    case CellKind::Buffer: return "buf";
    case CellKind::Sequential: return "seq";
  }
  return "comb";
}

Polarity polarity_from_string(const std::string& s) {
  if (s == "N") return Polarity::N;
  if (s == "P") return Polarity::P;
  CNY_EXPECT_MSG(false, "bad polarity: " + s);
  return Polarity::N;
}

CellKind kind_from_string(const std::string& s) {
  if (s == "comb") return CellKind::Combinational;
  if (s == "buf") return CellKind::Buffer;
  if (s == "seq") return CellKind::Sequential;
  CNY_EXPECT_MSG(false, "bad cell kind: " + s);
  return CellKind::Combinational;
}

std::vector<double> Cell::transistor_widths() const {
  std::vector<double> out;
  out.reserve(transistors.size());
  for (const auto& t : transistors) out.push_back(t.width);
  return out;
}

double Cell::min_transistor_width() const {
  double m = 0.0;
  for (const auto& t : transistors) {
    m = (m == 0.0) ? t.width : std::min(m, t.width);
  }
  return m;
}

std::vector<int> Cell::regions_of(Polarity p) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (regions[i].polarity == p) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Cell::critical_regions(Polarity p, double threshold) const {
  std::vector<int> out;
  for (int r : regions_of(p)) {
    bool critical = false;
    for (const auto& t : transistors) {
      if (t.region == r && t.width <= threshold) {
        critical = true;
        break;
      }
    }
    if (critical) out.push_back(r);
  }
  return out;
}

double Cell::region_fet_width(int r) const {
  CNY_EXPECT(r >= 0 && static_cast<std::size_t>(r) < regions.size());
  double w = 0.0;
  for (const auto& t : transistors) {
    if (t.region == r) w = std::max(w, t.width);
  }
  return w;
}

void Cell::validate() const {
  CNY_ENSURE_MSG(!name.empty(), "cell without a name");
  CNY_ENSURE(width > 0.0 && height > 0.0);
  CNY_ENSURE(!transistors.empty());
  CNY_ENSURE(!regions.empty());
  for (const auto& t : transistors) {
    CNY_ENSURE_MSG(t.width > 0.0, "non-positive transistor width in " + name);
    CNY_ENSURE_MSG(
        t.region >= 0 && static_cast<std::size_t>(t.region) < regions.size(),
        "bad region index in " + name);
    CNY_ENSURE_MSG(regions[static_cast<std::size_t>(t.region)].polarity ==
                       t.polarity,
                   "transistor/region polarity mismatch in " + name);
  }
  for (const auto& r : regions) {
    CNY_ENSURE_MSG(!r.rect.empty(), "empty active region in " + name);
    CNY_ENSURE_MSG(r.rect.left() >= 0.0 && r.rect.right() <= width + 1e-9 &&
                       r.rect.bottom() >= 0.0 &&
                       r.rect.top() <= height + 1e-9,
                   "active region outside cell box in " + name);
  }
}

}  // namespace cny::celllib
