#include "celllib/library.h"

#include <algorithm>
#include <set>

#include "util/contracts.h"

namespace cny::celllib {

Library::Library(std::string name, double node_nm)
    : name_(std::move(name)), node_nm_(node_nm) {
  CNY_EXPECT(node_nm > 0.0);
}

void Library::add(Cell cell) { cells_.push_back(std::move(cell)); }

const Cell* Library::find(const std::string& name) const {
  for (const auto& c : cells_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void Library::validate() const {
  std::set<std::string> seen;
  for (const auto& c : cells_) {
    c.validate();
    CNY_ENSURE_MSG(seen.insert(c.name).second, "duplicate cell: " + c.name);
  }
}

double Library::min_transistor_width() const {
  double m = 0.0;
  for (const auto& c : cells_) {
    const double cm = c.min_transistor_width();
    if (cm > 0.0) m = (m == 0.0) ? cm : std::min(m, cm);
  }
  return m;
}

Library Library::scaled(double new_node_nm) const {
  CNY_EXPECT(new_node_nm > 0.0);
  CNY_EXPECT(node_nm_ > 0.0);
  const double f = new_node_nm / node_nm_;
  Library out(name_ + "_s" + std::to_string(static_cast<int>(new_node_nm)),
              new_node_nm);
  for (Cell c : cells_) {
    c.width *= f;
    c.height *= f;
    for (auto& t : c.transistors) t.width *= f;
    for (auto& r : c.regions) {
      r.rect.x *= f;
      r.rect.y *= f;
      r.rect.w *= f;
      r.rect.h *= f;
    }
    for (auto& p : c.pins) p.x *= f;
    out.add(std::move(c));
  }
  return out;
}

void Library::upsize_transistors(const std::function<double(double)>& fn) {
  for (auto& c : cells_) {
    for (auto& t : c.transistors) {
      const double w = fn(t.width);
      CNY_EXPECT_MSG(w >= t.width, "upsize function shrank a transistor");
      t.width = w;
    }
    // Re-derive region y-extents (cells have vertical slack between rails
    // for the smallest devices — Sec 2.2). N regions grow upward from their
    // bottom edge; P regions grow downward from their top edge, mirroring
    // how each polarity faces its supply rail.
    for (std::size_t r = 0; r < c.regions.size(); ++r) {
      const double need = c.region_fet_width(static_cast<int>(r));
      if (need > c.regions[r].rect.h) {
        if (c.regions[r].polarity == Polarity::P) {
          c.regions[r].rect.y -= need - c.regions[r].rect.h;
        }
        c.regions[r].rect.h = need;
      }
    }
  }
}

}  // namespace cny::celllib
