#include "celllib/generator.h"

#include <algorithm>
#include <cmath>

#include "rng/engine.h"
#include "util/contracts.h"

namespace cny::celllib {

namespace {

/// Series stacks are upsized to preserve drive: depth 1 -> 1.0x,
/// depth 2 -> 1.5x, depth 3 -> 2.0x (the usual (1+s)/2 heuristic).
double stack_factor(int depth) { return 0.5 * (1.0 + depth); }

/// Deterministic per-family hash in [0, 1).
double family_hash01(const std::string& family, std::uint64_t seed_label,
                     std::uint64_t salt) {
  std::uint64_t h = seed_label ^ salt;
  for (char c : family) h = h * 1099511628211ull + static_cast<unsigned char>(c);
  const std::uint64_t mixed = cny::rng::derive_seed(h, salt);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

struct PolarityPlan {
  std::vector<double> widths;              // finger widths
  std::vector<int> finger_region;          // region index per finger
  int n_regions = 1;
};

/// Expands the template's logical transistors into fingers and assigns them
/// to regions (contiguous blocks). `width_mult` folds the P/N beta ratio in
/// so the finger cap applies to the final drawn width; folded templates use
/// a tighter cap because their vertical budget is shared by stacked regions.
PolarityPlan plan_polarity(const GeometryRules& rules, int n_fets, int stack,
                           int n_regions, int drive, double width_mult,
                           bool folded, CellKind kind) {
  PolarityPlan plan;
  plan.n_regions = n_regions;
  const double max_finger =
      (folded ? 1.6 : 4.2) * rules.min_width_n * width_mult;
  for (int i = 0; i < n_fets; ++i) {
    const int depth = 1 + (i % stack);
    // Sequential cells keep minimum-size internal (latch/feedback)
    // transistors at every drive strength; only the last two devices — the
    // output stage — scale with drive. This is why flip-flops stay in the
    // small-width-critical set (Sec 3.3).
    const bool internal = kind == CellKind::Sequential && i + 2 < n_fets;
    const int eff_drive = internal ? 1 : drive;
    // Internal sequential devices sit at the true lithographic minimum;
    // logic transistors scale from the X1 drive-unit width.
    const double base = internal ? rules.min_width_n : rules.unit_width_n;
    const double w = base * width_mult * stack_factor(depth) *
                     static_cast<double>(eff_drive);
    const int nf = std::max(1, static_cast<int>(std::ceil(w / max_finger)));
    for (int f = 0; f < nf; ++f) plan.widths.push_back(w / nf);
  }
  const int total = static_cast<int>(plan.widths.size());
  plan.finger_region.resize(plan.widths.size());
  for (int i = 0; i < total; ++i) {
    plan.finger_region[static_cast<std::size_t>(i)] =
        std::min(n_regions - 1, i * n_regions / std::max(1, total));
  }
  return plan;
}

}  // namespace

Library generate_library(const std::string& name, const GeometryRules& rules,
                         const std::vector<FamilyTemplate>& families,
                         std::uint64_t seed_label) {
  Library lib(name, rules.node_nm);

  for (const auto& fam : families) {
    CNY_EXPECT(!fam.drives.empty());
    CNY_EXPECT(fam.n_fets >= 1 && fam.p_fets >= 1);
    CNY_EXPECT(fam.n_regions >= 1 && fam.p_regions >= 1);

    const double jitter =
        family_hash01(fam.family, seed_label, 0xA11) * rules.region_y_jitter;
    // Folded-layout stagger parameters (see generator.h / DESIGN.md):
    // fold_gap — the sub-minimum x gap legal between regions at different y;
    // fold_overlap — fraction of a region's width that x-overlaps its
    // vertically adjacent neighbour in aggressively folded templates.
    const double fold_gap =
        rules.fold_gap_min + family_hash01(fam.family, seed_label, 0xB22) *
                                 (rules.fold_gap_max - rules.fold_gap_min);
    const double fold_overlap =
        fam.folded ? family_hash01(fam.family, seed_label, 0xC33) *
                         rules.fold_overlap_max
                   : 0.0;

    for (int drive : fam.drives) {
      Cell cell;
      cell.family = fam.family;
      cell.name = fam.family + "_X" + std::to_string(drive);
      cell.drive = drive;
      cell.kind = fam.kind;
      cell.height = rules.cell_height;

      const PolarityPlan n_plan =
          plan_polarity(rules, fam.n_fets, fam.n_stack, fam.n_regions, drive,
                        1.0, fam.folded, fam.kind);
      const PolarityPlan p_plan =
          plan_polarity(rules, fam.p_fets, fam.p_stack, fam.p_regions, drive,
                        rules.beta, fam.folded, fam.kind);

      double max_extent = 0.0;
      const auto build = [&](const PolarityPlan& plan, Polarity pol) {
        const int base_region = static_cast<int>(cell.regions.size());
        // Region x-extent: one gate pitch per finger it contains.
        std::vector<int> fingers_in(static_cast<std::size_t>(plan.n_regions), 0);
        std::vector<double> fet_w(static_cast<std::size_t>(plan.n_regions), 0.0);
        for (std::size_t i = 0; i < plan.widths.size(); ++i) {
          const auto r = static_cast<std::size_t>(plan.finger_region[i]);
          fingers_in[r] += 1;
          fet_w[r] = std::max(fet_w[r], plan.widths[i]);
        }

        // Vertical budget: each polarity owns half the cell. Clamp the
        // template jitter so the (possibly folded) region stack always fits.
        double stack_extent = 0.0;
        for (int r = 0; r < plan.n_regions; ++r) {
          stack_extent += fet_w[static_cast<std::size_t>(r)];
        }
        if (fam.folded && plan.n_regions > 1) {
          stack_extent += rules.region_y_gap * (plan.n_regions - 1);
        } else if (!fam.folded) {
          // Side-by-side regions: extent is the tallest region.
          stack_extent = 0.0;
          for (int r = 0; r < plan.n_regions; ++r) {
            stack_extent =
                std::max(stack_extent, fet_w[static_cast<std::size_t>(r)]);
          }
        }
        const double budget =
            0.5 * rules.cell_height - rules.region_y_base_n - stack_extent;
        CNY_ENSURE_MSG(budget >= 0.0,
                       "cell template does not fit vertically: " + cell.name);
        const double jit = std::min(fam.folded ? jitter / 3.0 : jitter, budget);

        // Place regions in x: unfolded regions sit side by side at legal
        // spacing; folded regions stagger with sub-minimum gap and optional
        // x-overlap (legal only because they sit at different y).
        double x = rules.cell_margin;
        double extent_end = rules.cell_margin;
        double y_cursor = 0.0;  // running bottom offset within the stack
        for (int r = 0; r < plan.n_regions; ++r) {
          const auto ri = static_cast<std::size_t>(r);
          const double w_region =
              std::max(1, fingers_in[ri]) * rules.gate_pitch;
          const double stack_off = fam.folded ? y_cursor : 0.0;
          double y;
          if (pol == Polarity::N) {
            y = rules.region_y_base_n + jit + stack_off;
          } else {
            y = rules.cell_height - rules.region_y_base_n - jit - stack_off -
                fet_w[ri];
          }
          cell.regions.push_back(
              ActiveRegion{pol, geom::Rect{x, y, w_region, fet_w[ri]}});
          extent_end = std::max(extent_end, x + w_region);
          y_cursor += fet_w[ri] + rules.region_y_gap;
          if (fam.folded) {
            x += (1.0 - fold_overlap) * w_region + fold_gap;
          } else {
            x += w_region + rules.active_spacing;
          }
        }
        max_extent = std::max(max_extent, extent_end);

        // Transistors (fingers).
        for (std::size_t i = 0; i < plan.widths.size(); ++i) {
          Transistor t;
          t.name = std::string(pol == Polarity::N ? "MN" : "MP") +
                   std::to_string(i);
          t.polarity = pol;
          t.width = plan.widths[i];
          t.region = base_region + plan.finger_region[i];
          cell.transistors.push_back(std::move(t));
        }
      };

      build(n_plan, Polarity::N);
      build(p_plan, Polarity::P);

      cell.width = max_extent + rules.cell_margin;

      // I/O pins: logic inputs plus one output, spread across the cell.
      const int n_pins = fam.fanin + 1;
      for (int p = 0; p < n_pins; ++p) {
        const double frac = (p + 1.0) / (n_pins + 1.0);
        cell.pins.push_back(Pin{
            p < fam.fanin ? std::string(1, static_cast<char>('A' + p)) : "Z",
            frac * cell.width});
      }

      cell.validate();
      lib.add(std::move(cell));
    }
  }
  lib.validate();
  return lib;
}

GeometryRules nangate45_rules() {
  GeometryRules r;
  r.node_nm = 45.0;
  r.cell_height = 1400.0;
  r.min_width_n = 90.0;
  r.beta = 1.5;
  r.gate_pitch = 190.0;
  r.active_spacing = 140.0;
  r.cell_margin = 95.0;
  r.region_y_base_n = 150.0;
  r.region_y_gap = 60.0;
  r.region_y_jitter = 95.0;
  r.fold_gap_min = 25.0;
  r.fold_gap_max = 55.0;
  r.fold_overlap_max = 0.22;
  return r;
}

GeometryRules commercial65_rules() {
  GeometryRules r;
  r.node_nm = 65.0;
  r.cell_height = 1800.0;
  // CNFET minimum widths are set by contact lithography rather than the
  // node name, so the 65 nm library's minimum stays comparable to 45 nm.
  r.min_width_n = 95.0;
  r.unit_width_n = 128.0;
  r.beta = 1.6;
  r.gate_pitch = 260.0;
  r.active_spacing = 200.0;
  r.cell_margin = 130.0;
  r.region_y_base_n = 180.0;
  r.region_y_gap = 80.0;
  r.region_y_jitter = 320.0;
  r.fold_gap_min = 10.0;
  r.fold_gap_max = 50.0;
  r.fold_overlap_max = 0.85;
  return r;
}

Library make_nangate45_like() {
  using K = CellKind;
  std::vector<FamilyTemplate> fams;
  const std::vector<int> d124 = {1, 2, 4};
  const std::vector<int> d12 = {1, 2};
  const auto comb = [&](const std::string& f, int fanin, int nf, int pf,
                        int ns, int ps, std::vector<int> drives) {
    fams.push_back(FamilyTemplate{f, K::Combinational, fanin, nf, pf, ns, ps,
                                  1, 1, false, std::move(drives)});
  };
  // Inverters / buffers.
  fams.push_back(FamilyTemplate{"INV", K::Buffer, 1, 1, 1, 1, 1, 1, 1, false,
                                {1, 2, 4, 8, 16, 32}});
  fams.push_back(FamilyTemplate{"BUF", K::Buffer, 1, 2, 2, 1, 1, 1, 1, false,
                                {1, 2, 4, 8, 16, 32}});
  fams.push_back(FamilyTemplate{"CLKBUF", K::Buffer, 1, 2, 2, 1, 1, 1, 1,
                                false, {1, 2, 3}});
  fams.push_back(FamilyTemplate{"TBUF", K::Buffer, 2, 4, 4, 2, 2, 1, 1, false,
                                {1, 2, 4, 8}});
  fams.push_back(FamilyTemplate{"TINV", K::Buffer, 2, 2, 2, 2, 2, 1, 1, false,
                                {1}});
  // NAND / NOR.
  comb("NAND2", 2, 2, 2, 2, 1, {1, 2, 4, 8});
  comb("NAND3", 3, 3, 3, 3, 1, d124);
  comb("NAND4", 4, 4, 4, 3, 1, d124);  // stack capped at 3 in synthesis
  comb("NOR2", 2, 2, 2, 1, 2, {1, 2, 4, 8});
  comb("NOR3", 3, 3, 3, 1, 3, d124);
  comb("NOR4", 4, 4, 4, 1, 3, d124);
  // AND / OR (NAND/NOR + inverter).
  comb("AND2", 2, 3, 3, 2, 1, d124);
  comb("AND3", 3, 4, 4, 3, 1, d124);
  comb("AND4", 4, 5, 5, 3, 1, d124);
  comb("OR2", 2, 3, 3, 1, 2, d124);
  comb("OR3", 3, 4, 4, 1, 3, d124);
  comb("OR4", 4, 5, 5, 1, 3, d124);
  // XOR / XNOR / MUX.
  comb("XOR2", 2, 5, 5, 2, 2, d12);
  comb("XNOR2", 2, 5, 5, 2, 2, d12);
  comb("MUX2", 3, 6, 6, 2, 2, d12);
  comb("MUX4", 6, 12, 12, 2, 2, d12);
  comb("XOR3", 3, 9, 9, 2, 2, {1});
  comb("XNOR3", 3, 9, 9, 2, 2, {1});
  comb("NAND2B", 2, 3, 3, 2, 1, d12);
  comb("DLY4", 1, 8, 8, 1, 1, {1});
  // AOI / OAI.
  comb("AOI21", 3, 3, 3, 2, 2, d124);
  comb("AOI22", 4, 4, 4, 2, 2, d124);
  comb("AOI211", 4, 4, 4, 2, 3, d12);
  comb("AOI221", 5, 5, 5, 2, 3, d12);
  comb("OAI21", 3, 3, 3, 2, 2, d124);
  comb("OAI22", 4, 4, 4, 2, 2, d124);
  comb("OAI211", 4, 4, 4, 3, 2, d12);
  comb("OAI221", 5, 5, 5, 3, 2, d12);
  // AO / OA.
  comb("AO21", 3, 4, 4, 2, 2, d124);
  comb("AO22", 4, 5, 5, 2, 2, d124);
  comb("OA21", 3, 4, 4, 2, 2, d124);
  comb("OA22", 4, 5, 5, 2, 2, d124);
  // High-fan-in folded cells — the Fig 3.2 / Table 2 geometry.
  fams.push_back(FamilyTemplate{"AOI222", K::Combinational, 6, 6, 6, 2, 3, 2,
                                2, true, d12});
  fams.push_back(FamilyTemplate{"OAI222", K::Combinational, 6, 6, 6, 3, 2, 2,
                                2, true, d12});
  fams.push_back(FamilyTemplate{"OAI33", K::Combinational, 6, 6, 6, 3, 2, 2,
                                2, true, {1}});
  // Arithmetic.
  fams.push_back(FamilyTemplate{"FA", K::Combinational, 3, 12, 12, 2, 2, 2, 2,
                                true, {1}});
  fams.push_back(FamilyTemplate{"HA", K::Combinational, 2, 7, 7, 2, 2, 1, 1,
                                false, {1}});
  // Sequential (single-row templates in this library).
  const auto seq = [&](const std::string& f, int nf, std::vector<int> drives) {
    fams.push_back(FamilyTemplate{f, K::Sequential, 3, nf, nf, 2, 2, 1, 1,
                                  false, std::move(drives)});
  };
  seq("DFF", 12, d12);
  seq("DFFN", 13, d12);
  seq("DFFR", 14, d12);
  seq("DFFS", 14, d12);
  seq("DFFRS", 16, d12);
  seq("SDFF", 16, d12);
  seq("SDFFR", 18, d12);
  seq("SDFFS", 18, d12);
  seq("DLH", 8, d12);
  seq("DLL", 8, d12);
  fams.push_back(FamilyTemplate{"CLKGATE", K::Sequential, 2, 8, 8, 2, 2, 1, 1,
                                false, d12});
  fams.push_back(FamilyTemplate{"CLKGATETST", K::Sequential, 3, 10, 10, 2, 2,
                                1, 1, false, d12});

  Library lib = generate_library("nangate45_like", nangate45_rules(), fams,
                                 /*seed_label=*/45u);
  CNY_ENSURE_MSG(lib.size() == 134,
                 "nangate45_like must have 134 cells, got " +
                     std::to_string(lib.size()));
  return lib;
}

Library make_commercial65_like() {
  using K = CellKind;
  std::vector<FamilyTemplate> fams;
  const std::vector<int> dmany = {1, 2, 3, 4, 6, 8};
  const std::vector<int> d1234 = {1, 2, 3, 4};
  const std::vector<int> d123 = {1, 2, 3};
  const std::vector<int> d12 = {1, 2};

  const auto comb = [&](const std::string& f, int fanin, int nf, int pf,
                        int ns, int ps, const std::vector<int>& drives) {
    fams.push_back(
        FamilyTemplate{f, K::Combinational, fanin, nf, pf, ns, ps, 1, 1,
                       false, drives});
  };
  const auto folded = [&](const std::string& f, K kind, int fanin, int nf,
                          int pf, int ns, int ps, int regions,
                          const std::vector<int>& drives) {
    fams.push_back(FamilyTemplate{f, kind, fanin, nf, pf, ns, ps, regions,
                                  regions, true, drives});
  };

  fams.push_back(FamilyTemplate{"INV", K::Buffer, 1, 1, 1, 1, 1, 1, 1, false,
                                {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}});
  fams.push_back(FamilyTemplate{"BUF", K::Buffer, 1, 2, 2, 1, 1, 1, 1, false,
                                {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}});
  fams.push_back(FamilyTemplate{"CLKBUF", K::Buffer, 1, 2, 2, 1, 1, 1, 1,
                                false, {1, 2, 3, 4, 6, 8, 12, 16}});
  fams.push_back(FamilyTemplate{"CLKINV", K::Buffer, 1, 1, 1, 1, 1, 1, 1,
                                false, {1, 2, 3, 4, 6, 8, 12, 16}});
  fams.push_back(FamilyTemplate{"TBUF", K::Buffer, 2, 4, 4, 2, 2, 1, 1, false,
                                dmany});
  fams.push_back(FamilyTemplate{"TINV", K::Buffer, 2, 2, 2, 2, 2, 1, 1, false,
                                d1234});
  fams.push_back(FamilyTemplate{"DLY1", K::Buffer, 1, 4, 4, 1, 1, 1, 1, false,
                                d1234});
  fams.push_back(FamilyTemplate{"DLY2", K::Buffer, 1, 6, 6, 1, 1, 1, 1, false,
                                d1234});

  comb("NAND2", 2, 2, 2, 2, 1, dmany);
  comb("NAND3", 3, 3, 3, 3, 1, d1234);
  comb("NAND4", 4, 4, 4, 3, 1, d1234);
  comb("NOR2", 2, 2, 2, 1, 2, dmany);
  comb("NOR3", 3, 3, 3, 1, 3, d1234);
  comb("NOR4", 4, 4, 4, 1, 3, d1234);
  comb("AND2", 2, 3, 3, 2, 1, d1234);
  comb("AND3", 3, 4, 4, 3, 1, d1234);
  comb("AND4", 4, 5, 5, 3, 1, d123);
  comb("OR2", 2, 3, 3, 1, 2, d1234);
  comb("OR3", 3, 4, 4, 1, 3, d1234);
  comb("OR4", 4, 5, 5, 1, 3, d123);
  comb("XOR2", 2, 5, 5, 2, 2, d123);
  comb("XOR3", 3, 9, 9, 2, 2, d12);
  comb("XNOR2", 2, 5, 5, 2, 2, d123);
  comb("XNOR3", 3, 9, 9, 2, 2, d12);
  comb("MUX2", 3, 6, 6, 2, 2, d123);
  comb("MUXI2", 3, 4, 4, 2, 2, d123);
  comb("AOI21", 3, 3, 3, 2, 2, d1234);
  comb("AOI22", 4, 4, 4, 2, 2, d1234);
  comb("AOI211", 4, 4, 4, 2, 3, d123);
  comb("AOI221", 5, 5, 5, 2, 3, d123);
  comb("OAI21", 3, 3, 3, 2, 2, d1234);
  comb("OAI22", 4, 4, 4, 2, 2, d1234);
  comb("OAI211", 4, 4, 4, 3, 2, d123);
  comb("OAI221", 5, 5, 5, 3, 2, d123);
  comb("AO21", 3, 4, 4, 2, 2, d1234);
  comb("AO22", 4, 5, 5, 2, 2, d1234);
  comb("OA21", 3, 4, 4, 2, 2, d1234);
  comb("OA22", 4, 5, 5, 2, 2, d1234);
  comb("HA", 2, 7, 7, 2, 2, d12);
  comb("NAND2B", 2, 3, 3, 2, 1, d123);
  comb("NOR2B", 2, 3, 3, 1, 2, d123);
  comb("AND2B", 2, 4, 4, 2, 1, d123);
  comb("OR2B", 2, 4, 4, 1, 2, d123);

  // High-fan-in folded combinational cells.
  folded("AOI222", K::Combinational, 6, 6, 6, 2, 3, 2, d123);
  folded("OAI222", K::Combinational, 6, 6, 6, 3, 2, 2, d123);
  folded("AOI322", K::Combinational, 7, 7, 7, 3, 3, 2, d12);
  folded("OAI322", K::Combinational, 7, 7, 7, 3, 3, 2, d12);
  folded("AOI332", K::Combinational, 8, 8, 8, 3, 3, 2, d12);
  folded("OAI332", K::Combinational, 8, 8, 8, 3, 3, 2, d12);
  folded("AOI333", K::Combinational, 9, 9, 9, 3, 3, 2, d12);
  folded("OAI333", K::Combinational, 9, 9, 9, 3, 3, 2, d12);
  folded("OAI33", K::Combinational, 6, 6, 6, 3, 2, 2, d123);
  folded("AOI33", K::Combinational, 6, 6, 6, 2, 3, 2, d123);
  folded("MUX4", K::Combinational, 6, 12, 12, 2, 2, 2, d12);
  folded("MUX8", K::Combinational, 11, 24, 24, 2, 2, 2, d12);
  folded("FA", K::Combinational, 3, 12, 12, 2, 2, 2, d12);
  folded("FAX", K::Combinational, 3, 14, 14, 2, 2, 2, d12);
  folded("DEC24", K::Combinational, 2, 10, 10, 2, 2, 2, d12);

  // Sequential cells: folded multi-row-active templates (the category the
  // paper calls out as hard to align).
  const auto seq = [&](const std::string& f, int nf,
                       const std::vector<int>& drives) {
    folded(f, K::Sequential, 3, nf, nf, 2, 2, 2, drives);
  };
  seq("DFF", 12, d1234);
  seq("DFFN", 13, d1234);
  seq("DFFR", 14, d1234);
  seq("DFFS", 14, d1234);
  seq("DFFRS", 16, d123);
  seq("SDFF", 16, d1234);
  seq("SDFFN", 17, d123);
  seq("SDFFR", 18, d1234);
  seq("SDFFS", 18, d123);
  seq("SDFFRS", 20, d123);
  seq("DFFQ", 10, d1234);
  seq("DFFRQ", 12, d1234);
  seq("SDFFQ", 14, d1234);
  seq("SDFFRQ", 16, d1234);
  seq("DLH", 8, d123);
  seq("DLL", 8, d123);
  seq("DLHR", 10, d123);
  seq("DLLR", 10, d123);
  seq("CLKGATE", 8, d1234);
  seq("CLKGATETST", 10, d1234);
  seq("RF1R1W", 14, d12);
  seq("LATCHEN", 9, d123);

  Library base = generate_library("commercial65_like", commercial65_rules(),
                                  fams, /*seed_label=*/65u);

  // Commercial libraries ship multiple threshold-voltage flavours of the
  // same footprint. VT implants do not change geometry, so the variants are
  // geometric copies under new names — exactly how they behave in the
  // aligned-active analysis. We add LVT for every cell and HVT for enough
  // cells to reach the paper's 775-cell total.
  Library lib("commercial65_like", base.node_nm());
  for (const auto& c : base.cells()) lib.add(c);
  for (const auto& c : base.cells()) {
    Cell v = c;
    v.name = c.family + "_LVT_X" + std::to_string(c.drive);
    v.family = c.family + "_LVT";
    lib.add(std::move(v));
  }
  const std::size_t want = 775;
  CNY_ENSURE_MSG(lib.size() <= want,
                 "commercial65_like base too large: " +
                     std::to_string(lib.size()));
  for (const auto& c : base.cells()) {
    if (lib.size() >= want) break;
    Cell v = c;
    v.name = c.family + "_HVT_X" + std::to_string(c.drive);
    v.family = c.family + "_HVT";
    lib.add(std::move(v));
  }
  CNY_ENSURE_MSG(lib.size() == want,
                 "commercial65_like must have 775 cells, got " +
                     std::to_string(lib.size()));
  lib.validate();
  return lib;
}

}  // namespace cny::celllib
