// Deterministic random-number engine for all Monte Carlo components.
//
// xoshiro256++ seeded through SplitMix64, with jump() / long_jump() for
// constructing statistically independent streams — every experiment in this
// library is reproducible from a single 64-bit master seed.
#pragma once

#include <array>
#include <cstdint>

namespace cny::rng {

/// xoshiro256++ 1.0 (Blackman & Vigna), a small, fast, high-quality PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Advances 2^128 steps: use to split one seed into parallel streams.
  void jump();

  /// Advances 2^192 steps: use to split into groups of streams.
  void long_jump();

  /// Returns a new engine jumped `n`+1 times past this one (this engine is
  /// left untouched). Stream 0 of a seed is the engine itself.
  [[nodiscard]] Xoshiro256 make_stream(unsigned n) const;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n >= 1.
  std::uint64_t uniform_index(std::uint64_t n);

  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const { return s_; }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// SplitMix64 step — also exposed for hashing experiment identifiers into
/// per-experiment seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Derives a child seed from (master seed, stream label) deterministically.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint64_t label);

}  // namespace cny::rng
