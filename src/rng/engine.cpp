#include "rng/engine.h"

#include "util/contracts.h"

namespace cny::rng {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t label) {
  std::uint64_t s = master ^ (0xA0761D6478BD642Full + label * 0xE7037ED1A0B428DBull);
  return splitmix64(s);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

namespace {
void apply_jump(std::array<std::uint64_t, 4>& s, Xoshiro256& self,
                const std::uint64_t* table) {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 64; ++b) {
      if (table[i] & (1ull << b)) {
        s0 ^= s[0];
        s1 ^= s[1];
        s2 ^= s[2];
        s3 ^= s[3];
      }
      (void)self();
    }
  }
  s = {s0, s1, s2, s3};
}
}  // namespace

void Xoshiro256::jump() {
  static const std::uint64_t kJump[] = {0x180EC6D33CFD0ABAull,
                                        0xD5A61266F0C9392Cull,
                                        0xA9582618E03FC9AAull,
                                        0x39ABDC4529B1661Cull};
  apply_jump(s_, *this, kJump);
}

void Xoshiro256::long_jump() {
  static const std::uint64_t kLongJump[] = {0x76E15D3EFEFDCBBFull,
                                            0xC5004E441C522FB3ull,
                                            0x77710069854EE241ull,
                                            0x39109BB02ACBE635ull};
  apply_jump(s_, *this, kLongJump);
}

Xoshiro256 Xoshiro256::make_stream(unsigned n) const {
  Xoshiro256 child = *this;
  for (unsigned i = 0; i <= n; ++i) child.jump();
  return child;
}

double Xoshiro256::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  CNY_EXPECT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) {
  CNY_EXPECT(n >= 1);
  // Lemire's nearly-divisionless bounded integers (rejection for exactness).
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t x = (*this)();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    const std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

}  // namespace cny::rng
