// Samplers for the distributions used by the CNT process models.
//
// All samplers are free functions on Xoshiro256 so that every random variate
// consumed by a simulation is attributable to one explicit engine (no hidden
// global state).
#pragma once

#include <cstdint>
#include <vector>

#include "rng/engine.h"

namespace cny::rng {

/// Standard normal via the Marsaglia polar method.
[[nodiscard]] double sample_normal(Xoshiro256& rng);

/// Normal with mean mu and standard deviation sigma (sigma >= 0).
[[nodiscard]] double sample_normal(Xoshiro256& rng, double mu, double sigma);

/// Exponential with mean `mean` (> 0).
[[nodiscard]] double sample_exponential(Xoshiro256& rng, double mean);

/// Gamma(shape k > 0, scale theta > 0), Marsaglia–Tsang squeeze method with
/// the k < 1 boosting trick.
[[nodiscard]] double sample_gamma(Xoshiro256& rng, double k, double theta);

/// Lognormal with *linear-domain* mean and standard deviation.
[[nodiscard]] double sample_lognormal_mean_sd(Xoshiro256& rng, double mean,
                                              double sd);

/// Bernoulli(p).
[[nodiscard]] bool sample_bernoulli(Xoshiro256& rng, double p);

/// Poisson(lambda >= 0): inversion for small lambda, recursive halving
/// (Poisson additivity) above — exact for all lambda.
[[nodiscard]] long sample_poisson(Xoshiro256& rng, double lambda);

/// Binomial(n, p) by explicit Bernoulli summation for small n and a
/// Poisson/normal-free inversion elsewhere (exact).
[[nodiscard]] long sample_binomial(Xoshiro256& rng, long n, double p);

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
class DiscreteSampler {
 public:
  /// Weights must be non-negative with a positive sum; they are normalised.
  explicit DiscreteSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t operator()(Xoshiro256& rng) const;
  [[nodiscard]] std::size_t size() const { return prob_.size(); }
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;
  std::vector<double> norm_;        // normalised input weights
};

}  // namespace cny::rng
