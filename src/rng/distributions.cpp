#include "rng/distributions.h"

#include <cmath>
#include <deque>

#include "util/contracts.h"

namespace cny::rng {

double sample_normal(Xoshiro256& rng) {
  // Marsaglia polar method; discards the second variate for simplicity
  // (engine is cheap, statistical quality is what matters here).
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Xoshiro256& rng, double mu, double sigma) {
  CNY_EXPECT(sigma >= 0.0);
  return mu + sigma * sample_normal(rng);
}

double sample_exponential(Xoshiro256& rng, double mean) {
  CNY_EXPECT(mean > 0.0);
  // -log(1-U) with U in [0,1) avoids log(0).
  return -mean * std::log1p(-rng.uniform());
}

double sample_gamma(Xoshiro256& rng, double k, double theta) {
  CNY_EXPECT(k > 0.0 && theta > 0.0);
  if (k < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
    const double u = rng.uniform();
    return sample_gamma(rng, k + 1.0, theta) * std::pow(u, 1.0 / k);
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = sample_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * theta;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * theta;
    }
  }
}

double sample_lognormal_mean_sd(Xoshiro256& rng, double mean, double sd) {
  CNY_EXPECT(mean > 0.0 && sd >= 0.0);
  if (sd == 0.0) return mean;
  const double cv2 = (sd / mean) * (sd / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(sample_normal(rng, mu, std::sqrt(sigma2)));
}

bool sample_bernoulli(Xoshiro256& rng, double p) {
  CNY_EXPECT(p >= 0.0 && p <= 1.0);
  return rng.uniform() < p;
}

long sample_poisson(Xoshiro256& rng, double lambda) {
  CNY_EXPECT(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda > 30.0) {
    // Poisson additivity: split until inversion is numerically safe.
    const double half = 0.5 * lambda;
    return sample_poisson(rng, half) + sample_poisson(rng, lambda - half);
  }
  // Knuth/inversion in the probability domain.
  const double limit = std::exp(-lambda);
  long n = 0;
  double prod = rng.uniform();
  while (prod > limit) {
    prod *= rng.uniform();
    ++n;
  }
  return n;
}

long sample_binomial(Xoshiro256& rng, long n, double p) {
  CNY_EXPECT(n >= 0);
  CNY_EXPECT(p >= 0.0 && p <= 1.0);
  if (p == 0.0 || n == 0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - sample_binomial(rng, n, 1.0 - p);
  if (n <= 64) {
    long c = 0;
    for (long i = 0; i < n; ++i) c += sample_bernoulli(rng, p) ? 1 : 0;
    return c;
  }
  // Waiting-time (geometric skipping) method — exact, O(np) expected.
  const double log_q = std::log1p(-p);
  long count = 0;
  double pos = 0.0;
  for (;;) {
    pos += std::floor(std::log1p(-rng.uniform()) / log_q) + 1.0;
    if (pos > static_cast<double>(n)) return count;
    ++count;
  }
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  CNY_EXPECT(!weights.empty());
  double sum = 0.0;
  for (double w : weights) {
    CNY_EXPECT_MSG(w >= 0.0, "negative weight");
    sum += w;
  }
  CNY_EXPECT_MSG(sum > 0.0, "all weights zero");

  const std::size_t n = weights.size();
  norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) norm_[i] = weights[i] / sum;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::deque<std::size_t> small, large;
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = norm_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.front();
    small.pop_front();
    const std::size_t l = large.front();
    prob_[s] = scaled[s];
    alias_[s] = static_cast<std::uint32_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_front();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t DiscreteSampler::operator()(Xoshiro256& rng) const {
  const std::size_t bucket =
      static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

double DiscreteSampler::probability(std::size_t i) const {
  CNY_EXPECT(i < norm_.size());
  return norm_[i];
}

}  // namespace cny::rng
