#include "obs/openmetrics.h"

#include <set>

namespace cny::obs {

namespace {

void render_counter(std::string& out, const std::string& name,
                    std::uint64_t value) {
  out += "# TYPE " + name + " counter\n";
  out += name + "_total " + std::to_string(value) + "\n";
}

void render_gauge(std::string& out, const std::string& name,
                  std::int64_t value) {
  out += "# TYPE " + name + " gauge\n";
  out += name + " " + std::to_string(value) + "\n";
}

void render_histogram(std::string& out, const std::string& name,
                      const HistogramSnapshot& h) {
  out += "# TYPE " + name + " histogram\n";
  std::uint64_t cumulative = 0;
  for (unsigned b = 0; b < 63; ++b) {
    if (h.buckets[b] == 0) continue;
    cumulative += h.buckets[b];
    // The log2 bucket's inclusive upper bound is a valid `le` boundary:
    // every observation in buckets 0..b is <= bucket_bounds(b).second.
    const std::uint64_t le = Histogram::bucket_bounds(b).second;
    out += name + "_bucket{le=\"" + std::to_string(le) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  // Bucket 63 is unbounded above, so it folds into the mandatory +Inf
  // bucket, which by definition equals the total count.
  out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
  out += name + "_sum " + std::to_string(h.sum) + "\n";
  out += name + "_count " + std::to_string(h.count) + "\n";
}

}  // namespace

std::string openmetrics_name(std::string_view name) {
  std::string out = "cny_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_openmetrics(const MetricsSnapshot& server,
                               const MetricsSnapshot& process) {
  std::string out;
  std::set<std::string> seen;  // sanitised family names already emitted
  const auto fresh = [&seen](const std::string& name) {
    return seen.insert(name).second;
  };
  for (const MetricsSnapshot* snap : {&server, &process}) {
    for (const auto& [name, value] : snap->counters) {
      const std::string om = openmetrics_name(name);
      if (fresh(om)) render_counter(out, om, value);
    }
    for (const auto& [name, value] : snap->gauges) {
      const std::string om = openmetrics_name(name);
      if (fresh(om)) render_gauge(out, om, value);
    }
    for (const auto& [name, h] : snap->histograms) {
      const std::string om = openmetrics_name(name);
      if (fresh(om)) render_histogram(out, om, h);
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace cny::obs
