// Resource accounting: what the process itself costs, read from
// /proc/self/{status,stat,fd} — resident set size, its high-water mark,
// accumulated CPU time, thread and descriptor counts.
//
// Two layers:
//   * sample_resources() — one synchronous sample. Pure observation (three
//     /proc reads, no allocation beyond the result), safe to call from any
//     thread at any time; `ok` is false on platforms without /proc, and
//     every field stays zero, so callers never branch on platform.
//   * ResourceSampler — a background thread sampling on a fixed interval
//     into `process.*` gauges of a Registry (so the stats payload and the
//     /metrics endpoint surface memory/CPU without any caller plumbing)
//     and, optionally, pushing a timestamped MetricsSnapshot into a
//     SnapshotRing (+ appending a JSONL export line) per tick — the
//     continuous-telemetry feed `cntyield_cli top` and the snapshot-rate
//     tests read.
//
// Like every obs facility, this is observability plumbing, never
// semantics: nothing in the library branches on a sampled value, so a
// running sampler cannot move a response or store byte (pinned in
// tests/test_service.cpp and test_campaign.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace cny::obs {

/// One point-in-time reading of the process's own footprint. All sizes in
/// kB (the unit /proc/self/status reports), CPU in milliseconds.
struct ResourceUsage {
  std::uint64_t rss_kb = 0;       ///< VmRSS: current resident set
  std::uint64_t vm_hwm_kb = 0;    ///< VmHWM: peak resident set ("high water")
  std::uint64_t cpu_user_ms = 0;  ///< utime, accumulated over the process
  std::uint64_t cpu_sys_ms = 0;   ///< stime, accumulated over the process
  std::uint64_t threads = 0;      ///< Threads: live thread count
  std::uint64_t open_fds = 0;     ///< open descriptors (/proc/self/fd)
  bool ok = false;                ///< false when /proc was unreadable
};

/// Samples the calling process once. Never throws; on failure returns a
/// zeroed reading with ok == false.
[[nodiscard]] ResourceUsage sample_resources();

/// Parses /proc/self/status-shaped text ("VmRSS:\t  123 kB" lines) into
/// `usage` (VmRSS, VmHWM, Threads). Split out so the parser is testable
/// against synthetic text without a live /proc.
void parse_status_text(std::string_view text, ResourceUsage& usage);

/// Parses /proc/self/stat-shaped text (fields after the parenthesised
/// comm, which may itself contain spaces and parentheses) into `usage`
/// (utime + stime, converted with `ticks_per_s`).
void parse_stat_text(std::string_view text, long ticks_per_s,
                     ResourceUsage& usage);

/// Background resource sampler. Construction registers the `process.*`
/// gauges and starts the thread; destruction (or stop()) joins it. The
/// thread waits on a condition variable, so stop() returns within one
/// wakeup regardless of the interval.
class ResourceSampler {
 public:
  struct Options {
    /// Milliseconds between samples. Clamped to >= 1.
    unsigned interval_ms = 1000;
    /// Where the process.{rss_kb,vm_hwm_kb,cpu_user_ms,cpu_sys_ms,
    /// threads,open_fds} gauges live. Null = Registry::global(), which is
    /// what makes them appear in every stats payload's "process" block.
    Registry* registry = nullptr;
    /// When set, each tick pushes {wall_ms, mono_us, snapshot_source()}
    /// here — the time series `top` rates are computed from.
    SnapshotRing* ring = nullptr;
    /// What goes into the ring (typically a server registry's snapshot).
    /// Null with a ring set = snapshot the gauge registry itself.
    std::function<MetricsSnapshot()> snapshot_source;
    /// When non-empty, each tick also appends one self-contained JSONL
    /// line ({"wall_ms","mono_us","counters","gauges"}) here, flushed
    /// immediately — a killed run keeps every complete line.
    std::string export_path;
  };

  explicit ResourceSampler(Options options);
  ~ResourceSampler();
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Takes one sample synchronously (the same work a tick does). The
  /// /metrics scrape path calls this so a scrape never reads gauges more
  /// than one interval stale — and it is how tests drive the sampler
  /// deterministically.
  void sample_now();

  /// Stops and joins the thread. Idempotent; the destructor calls it.
  void stop();

 private:
  void run();
  void tick();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Refreshes the process.* resource gauges of `registry` (null = global)
/// from one synchronous sample — what stats_payload() and the /metrics
/// handler call so RSS is current even without a background sampler.
void refresh_resource_gauges(Registry* registry = nullptr);

}  // namespace cny::obs
