#include "obs/trace.h"

#include <atomic>
#include <stdexcept>

namespace cny::obs {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  // Inlined splitmix64 finalizer so obs stays dependency-free: trace ids
  // need scrambling, not cryptography.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string next_trace_id() {
  static std::atomic<std::uint64_t> sequence{1};
  const std::uint64_t raw =
      splitmix(sequence.fetch_add(1, std::memory_order_relaxed));
  std::string out(16, '0');
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[(raw >> (4 * (15 - i))) & 0xF];
  }
  return out;
}

#if !defined(CNY_NO_OBS)

namespace {

/// Small per-thread trace tid (chrome trace "tid"): dense small ints make
/// the Perfetto track list readable, unlike raw pthread ids.
std::uint32_t thread_trace_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Minimal JSON string escape (quote, backslash, control chars) — arg
/// values include session keys, which are themselves JSON text.
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
}

void append_us(std::string& out, std::uint64_t ns) {
  // Microseconds with fixed millinanosecond precision — chrome trace "ts"
  // and "dur" are in us; fractional digits keep sub-us spans distinct.
  out += std::to_string(ns / 1000);
  const std::uint64_t frac = ns % 1000;
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
}

}  // namespace

TraceSink::TraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")),
      origin_(std::chrono::steady_clock::now()) {
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open trace file '" + path + "'");
  }
  std::fputs("[\n", file_);
}

TraceSink::~TraceSink() {
  if (file_ != nullptr) {
    // Closing "]" only on clean shutdown. Viewers accept a trailing comma
    // before it; an unclosed file (crash/kill) stays loadable too.
    std::fputs("]\n", file_);
    std::fclose(file_);
  }
}

void TraceSink::complete(
    std::string_view name, std::string_view category, std::uint64_t start_ns,
    std::uint64_t dur_ns,
    const std::vector<std::pair<std::string, std::string>>& args) {
  std::string line;
  line.reserve(128);
  line += "{\"name\":\"";
  append_escaped(line, name);
  line += "\",\"cat\":\"";
  append_escaped(line, category);
  line += "\",\"ph\":\"X\",\"ts\":";
  append_us(line, start_ns);
  line += ",\"dur\":";
  append_us(line, dur_ns);
  line += ",\"pid\":1,\"tid\":";
  line += std::to_string(thread_trace_id());
  if (!args.empty()) {
    line += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : args) {
      if (!first) line += ',';
      first = false;
      line += '"';
      append_escaped(line, key);
      line += "\":\"";
      append_escaped(line, value);
      line += '"';
    }
    line += '}';
  }
  line += "},\n";
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
}

void TraceSink::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fflush(file_);
}

#endif  // !CNY_NO_OBS

}  // namespace cny::obs
