// Time-series snapshots: a fixed-capacity ring of timestamped
// MetricsSnapshots, plus delta/rate computation between any two entries.
//
// The ring is the bridge from point-in-time metrics to *rates over time*:
// a sampler pushes one TimedSnapshot per tick, bounded memory (the ring
// overwrites its oldest entry), and a reader computes requests/s or
// errors/s between any two entries without the writer keeping any
// derived state. Rates are defensive by construction: a zero or negative
// interval yields 0 (never a division blow-up), and a counter that
// appears to go backwards (a restarted server scraped into the same
// ring) clamps to 0 instead of reporting a huge negative rate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cny::obs {

/// One ring entry: a metrics snapshot plus when it was taken, on both
/// clocks — wall time for humans/export, monotonic time for rate math
/// (wall time can step; rates must never see that).
struct TimedSnapshot {
  std::uint64_t wall_ms = 0;  ///< system_clock since epoch
  std::uint64_t mono_us = 0;  ///< steady_clock, the rate denominator
  MetricsSnapshot metrics;
};

/// Per-second counter rates between two snapshots, name-sorted. Counters
/// present in only one snapshot are skipped (they appeared mid-window;
/// the next window rates them).
[[nodiscard]] std::vector<std::pair<std::string, double>> counter_rates(
    const TimedSnapshot& from, const TimedSnapshot& to);

/// Renders one TimedSnapshot as a self-contained JSON line
/// ({"wall_ms":..,"mono_us":..,"counters":{..},"gauges":{..}}) — the
/// JSONL export format (histograms are summarised by the stats payload
/// and /metrics; the time series carries the countable state).
[[nodiscard]] std::string snapshot_jsonl_line(const TimedSnapshot& snapshot);

/// Fixed-capacity ring of TimedSnapshots, oldest-first indexing.
/// Thread-safe: one sampler pushes while readers iterate.
class SnapshotRing {
 public:
  explicit SnapshotRing(std::size_t capacity);

  void push(TimedSnapshot snapshot);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Entry `index` with 0 = oldest surviving, size()-1 = newest.
  /// Throws std::out_of_range past size().
  [[nodiscard]] TimedSnapshot at(std::size_t index) const;

  /// Convenience: rates between the two newest entries (what a live
  /// dashboard shows). Empty when fewer than two entries exist.
  [[nodiscard]] std::vector<std::pair<std::string, double>> latest_rates()
      const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TimedSnapshot> slots_;  ///< grows to capacity_, then wraps
  std::size_t next_ = 0;              ///< wrap position once full
};

}  // namespace cny::obs
