// Lock-light metrics registry: named counters, gauges, and log-bucketed
// latency histograms, with a consistent snapshot API.
//
// Design rules:
//   * Hot-path updates are single relaxed atomic RMWs — no locks, no
//     allocation, no syscalls. The registry mutex guards only the
//     name->metric map; callers cache the returned reference (stable for
//     the registry's lifetime) so steady-state code never touches the map.
//   * Snapshots are *consistent per metric*, not across metrics: each
//     counter/gauge/histogram is read atomically, but two metrics may be
//     read a few instructions apart. That is the right trade for
//     diagnostics — cross-metric transactions would put a lock on every
//     increment.
//   * Histograms bucket by log2 of the observed value (microseconds by
//     convention, `*_us` names): 64 buckets cover the full uint64 range,
//     quantiles are estimated by linear interpolation inside the hit
//     bucket, and the exact max is tracked on the side so the tail is
//     never understated by bucketing.
//
// The registry is observability plumbing, never semantics: nothing in the
// library may branch on a metric value, so removing every call site leaves
// behaviour bit-identical (the zero-perturbation contract in
// tests/test_obs.cpp and test_service.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cny::obs {

/// Monotone event count. Relaxed ordering: counts are diagnostics, they
/// order against nothing.
class Counter {
 public:
  void add(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, busy workers): goes up *and* down.
class Gauge {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Read-side view of one histogram; see Histogram for the bucket layout.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< sum of observed values
  std::uint64_t max = 0;  ///< exact largest observation
  std::array<std::uint64_t, 64> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Estimated q-quantile (q in [0,1]): linear interpolation inside the
  /// log2 bucket holding the q*count-th observation, clamped to `max`.
  [[nodiscard]] double quantile(double q) const;
};

/// Log2-bucketed latency histogram. Bucket i holds values whose
/// bit_width is i: bucket 0 = {0}, bucket i = [2^(i-1), 2^i) for
/// 1 <= i < 63, and bucket 63 absorbs everything from 2^62 up (the top
/// two powers share it so 64 buckets cover the whole uint64 axis).
/// One observe() is three relaxed adds plus a CAS-max — no lock.
class Histogram {
 public:
  void observe(std::uint64_t value) {
    const unsigned bucket = bucket_of(value);
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

  [[nodiscard]] static unsigned bucket_of(std::uint64_t value) {
    unsigned width = 0;  // == std::bit_width(value), spelled out for clarity
    while (value != 0) {
      value >>= 1;
      ++width;
    }
    return width > 63 ? 63 : width;  // clamp into the shared top bucket
  }
  /// [lower, upper] value range of `bucket` (inclusive).
  [[nodiscard]] static std::pair<std::uint64_t, std::uint64_t> bucket_bounds(
      unsigned bucket);

 private:
  std::array<std::atomic<std::uint64_t>, 64> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// One registry's full state, names sorted (std::map order), each metric
/// read atomically at snapshot time.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Named-metric registry. counter()/gauge()/histogram() get-or-create and
/// return a reference that stays valid for the registry's lifetime —
/// resolve once, cache the reference, update lock-free forever after.
/// A name maps to exactly one metric kind; reusing it as another kind
/// throws std::logic_error (a naming bug worth failing loudly on).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Process-wide registry for subsystems without a natural owner
  /// (exec.* pool gauges, kernels.* lane counters). Never destroyed, so
  /// worker threads may touch metrics during static teardown.
  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cny::obs
