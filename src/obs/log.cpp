#include "obs/log.h"

#include <chrono>
#include <stdexcept>

namespace cny::obs {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
  }
  return "info";
}

bool log_level_from_name(std::string_view name, LogLevel& out) {
  if (name == "debug") out = LogLevel::Debug;
  else if (name == "info") out = LogLevel::Info;
  else if (name == "warn") out = LogLevel::Warn;
  else if (name == "error") out = LogLevel::Error;
  else return false;
  return true;
}

#if !defined(CNY_NO_OBS)

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Log::Log(const std::string& path, LogLevel min_level)
    : min_level_(min_level) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open log file: " + path);
  }
}

Log::~Log() {
  if (file_ != nullptr) std::fclose(file_);
}

void Log::write(
    LogLevel level, std::string_view event,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (!enabled(level)) return;
  const std::uint64_t ts_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string line = "{\"ts_ms\":" + std::to_string(ts_ms) + ",\"level\":\"";
  line += log_level_name(level);
  line += "\",\"event\":\"";
  append_escaped(line, event);
  line += '"';
  for (const auto& [key, raw_value] : fields) {
    line += ",\"";
    append_escaped(line, key);
    line += "\":";
    line += raw_value;  // pre-rendered JSON (escaped string or bare number)
  }
  line += '}';
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(file_, "%s\n", line.c_str());
  std::fflush(file_);  // one complete line per event, even if killed next
}

LogEvent& LogEvent::str(std::string_view key, std::string_view value) {
  if (log_ != nullptr) {
    std::string rendered = "\"";
    append_escaped(rendered, value);
    rendered += '"';
    fields_.emplace_back(std::string(key), std::move(rendered));
  }
  return *this;
}

LogEvent& LogEvent::num(std::string_view key, std::int64_t value) {
  if (log_ != nullptr) {
    fields_.emplace_back(std::string(key), std::to_string(value));
  }
  return *this;
}

#endif  // !CNY_NO_OBS

}  // namespace cny::obs
