#include "obs/resource.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace cny::obs {

namespace {

/// Reads a whole (small) file into a string. /proc files report st_size 0,
/// so this reads in chunks rather than trusting a stat().
bool read_small_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  out.clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok && !out.empty();
}

/// Parses the leading unsigned integer of `text` (after optional spaces
/// and tabs). Returns 0 when no digits are present.
std::uint64_t leading_u64(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  std::uint64_t value = 0;
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
  }
  return value;
}

std::uint64_t count_open_fds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::uint64_t count = 0;
  while (const dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  closedir(dir);
  // The directory stream itself holds one descriptor while we count.
  if (count > 0) --count;
  return count;
}

std::uint64_t wall_ms_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t mono_us_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void parse_status_text(std::string_view text, ResourceUsage& usage) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    if (line.rfind("VmRSS:", 0) == 0) {
      usage.rss_kb = leading_u64(line.substr(6));
    } else if (line.rfind("VmHWM:", 0) == 0) {
      usage.vm_hwm_kb = leading_u64(line.substr(6));
    } else if (line.rfind("Threads:", 0) == 0) {
      usage.threads = leading_u64(line.substr(8));
    }
    pos = eol + 1;
  }
}

void parse_stat_text(std::string_view text, long ticks_per_s,
                     ResourceUsage& usage) {
  if (ticks_per_s <= 0) ticks_per_s = 100;
  // The comm field (2) is parenthesised and may contain spaces and ')', so
  // field counting must start after the *last* ')'.
  const std::size_t close = text.rfind(')');
  if (close == std::string_view::npos) return;
  std::string_view rest = text.substr(close + 1);
  // rest now starts at field 3 ("state"); utime/stime are fields 14/15.
  std::uint64_t utime_ticks = 0;
  std::uint64_t stime_ticks = 0;
  int field = 2;  // fields consumed so far (pid, comm)
  std::size_t i = 0;
  while (i < rest.size()) {
    while (i < rest.size() && rest[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < rest.size() && rest[i] != ' ') ++i;
    if (i == start) break;
    ++field;
    if (field == 14) {
      utime_ticks = leading_u64(rest.substr(start, i - start));
    } else if (field == 15) {
      stime_ticks = leading_u64(rest.substr(start, i - start));
      break;
    }
  }
  usage.cpu_user_ms = utime_ticks * 1000 / static_cast<std::uint64_t>(ticks_per_s);
  usage.cpu_sys_ms = stime_ticks * 1000 / static_cast<std::uint64_t>(ticks_per_s);
}

ResourceUsage sample_resources() {
  ResourceUsage usage;
  std::string text;
  if (!read_small_file("/proc/self/status", text)) return usage;
  parse_status_text(text, usage);
  if (!read_small_file("/proc/self/stat", text)) return usage;
  parse_stat_text(text, sysconf(_SC_CLK_TCK), usage);
  usage.open_fds = count_open_fds();
  usage.ok = true;
  return usage;
}

void refresh_resource_gauges(Registry* registry) {
  const ResourceUsage usage = sample_resources();
  if (!usage.ok) return;
  Registry& r = registry != nullptr ? *registry : Registry::global();
  r.gauge("process.rss_kb").set(static_cast<std::int64_t>(usage.rss_kb));
  r.gauge("process.vm_hwm_kb").set(static_cast<std::int64_t>(usage.vm_hwm_kb));
  r.gauge("process.cpu_user_ms")
      .set(static_cast<std::int64_t>(usage.cpu_user_ms));
  r.gauge("process.cpu_sys_ms")
      .set(static_cast<std::int64_t>(usage.cpu_sys_ms));
  r.gauge("process.threads").set(static_cast<std::int64_t>(usage.threads));
  r.gauge("process.open_fds").set(static_cast<std::int64_t>(usage.open_fds));
}

struct ResourceSampler::Impl {
  Options options;
  std::FILE* export_file = nullptr;
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  std::mutex tick_mutex;  ///< serialises sample_now() against the thread
  std::thread thread;
};

ResourceSampler::ResourceSampler(Options options)
    : impl_(std::make_unique<Impl>()) {
  if (options.interval_ms == 0) options.interval_ms = 1;
  impl_->options = std::move(options);
  if (!impl_->options.export_path.empty()) {
    impl_->export_file = std::fopen(impl_->options.export_path.c_str(), "w");
    if (impl_->export_file == nullptr) {
      throw std::runtime_error("cannot open snapshot export file: " +
                               impl_->options.export_path);
    }
  }
  tick();  // gauges are live from construction, not one interval later
  impl_->thread = std::thread([this] { run(); });
}

ResourceSampler::~ResourceSampler() {
  stop();
  if (impl_->export_file != nullptr) std::fclose(impl_->export_file);
}

void ResourceSampler::sample_now() { tick(); }

void ResourceSampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
}

void ResourceSampler::run() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  while (!impl_->stopping) {
    impl_->cv.wait_for(lock,
                       std::chrono::milliseconds(impl_->options.interval_ms));
    if (impl_->stopping) break;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void ResourceSampler::tick() {
  const std::lock_guard<std::mutex> lock(impl_->tick_mutex);
  refresh_resource_gauges(impl_->options.registry);
  if (impl_->options.ring == nullptr && impl_->export_file == nullptr) return;
  TimedSnapshot snapshot;
  snapshot.wall_ms = wall_ms_now();
  snapshot.mono_us = mono_us_now();
  if (impl_->options.snapshot_source) {
    snapshot.metrics = impl_->options.snapshot_source();
  } else {
    Registry& r = impl_->options.registry != nullptr
                      ? *impl_->options.registry
                      : Registry::global();
    snapshot.metrics = r.snapshot();
  }
  if (impl_->export_file != nullptr) {
    const std::string line = snapshot_jsonl_line(snapshot);
    std::fprintf(impl_->export_file, "%s\n", line.c_str());
    std::fflush(impl_->export_file);
  }
  if (impl_->options.ring != nullptr) {
    impl_->options.ring->push(std::move(snapshot));
  }
}

}  // namespace cny::obs
