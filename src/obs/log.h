// Structured logging: a leveled JSONL event log, one self-contained JSON
// object per line, flushed per event — a killed run keeps every complete
// line. This replaces ad-hoc stderr prints for the events an operator
// greps for: server lifecycle, session evictions, overload rejects,
// deadline sheds, retry exhaustion, campaign checkpoints.
//
// Line shape:
//   {"ts_ms":1712345678901,"level":"warn","event":"server.overload",
//    "queue":1024,"client":"7"}
// ts_ms is wall-clock milliseconds since epoch; level is one of
// debug/info/warn/error; event is a dotted name; everything after is the
// event's own fields, strings JSON-escaped, numbers bare.
//
// The writing API is the RAII LogEvent builder:
//   obs::LogEvent(log, obs::LogLevel::Warn, "server.overload")
//       .num("queue", depth).str("client", id);
// The line is emitted on destruction. A LogEvent over a null Log, or
// below the log's minimum level, is fully inert (one pointer/level test),
// so call sites are unconditional — the contract behind "logging off
// costs nothing measurable".
//
// Like tracing, logging is observability plumbing, never semantics:
// nothing may branch on whether a log is attached, so an attached log
// cannot move a response or store byte (pinned in the zero-perturbation
// tests). Compile-out: -DCNY_OBS=OFF replaces Log/LogEvent with no-op
// stubs of identical shape; `--log-file` on such a build exits 2.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cny::obs {

/// True when this build carries the logging implementation (CNY_OBS=ON).
[[nodiscard]] constexpr bool logging_compiled() {
#if defined(CNY_NO_OBS)
  return false;
#else
  return true;
#endif
}

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// "debug" / "info" / "warn" / "error" (what the JSONL line carries).
[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// Parses a level name (as above). Returns false on unknown names, leaving
/// `out` untouched — the CLI's flag validation path.
[[nodiscard]] bool log_level_from_name(std::string_view name, LogLevel& out);

#if !defined(CNY_NO_OBS)

/// One JSONL log file plus its minimum level. Thread-safe: events from
/// concurrent workers serialise on a mutex around one fprintf+fflush.
class Log {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error when the file
  /// cannot be opened.
  explicit Log(const std::string& path, LogLevel min_level = LogLevel::Info);
  ~Log();
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  [[nodiscard]] LogLevel min_level() const { return min_level_; }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(min_level_);
  }

  /// Writes one complete event line. `fields` come pre-rendered from
  /// LogEvent: (key, raw-JSON-value) pairs, appended verbatim.
  void write(LogLevel level, std::string_view event,
             const std::vector<std::pair<std::string, std::string>>& fields);

 private:
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  LogLevel min_level_;
};

/// RAII event builder: accumulates fields, emits one line on destruction.
/// Null log or filtered level = fully inert.
class LogEvent {
 public:
  LogEvent(Log* log, LogLevel level, std::string_view event)
      : log_(log != nullptr && log->enabled(level) ? log : nullptr),
        level_(level),
        event_(event) {}
  ~LogEvent() {
    if (log_ != nullptr) log_->write(level_, event_, fields_);
  }
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  /// Attaches a string field (JSON-escaped here).
  LogEvent& str(std::string_view key, std::string_view value);
  /// Attaches an integer field (rendered bare).
  LogEvent& num(std::string_view key, std::int64_t value);

 private:
  Log* log_ = nullptr;
  LogLevel level_;
  std::string_view event_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

#else  // CNY_NO_OBS: same shape, no behaviour.

class Log {
 public:
  explicit Log(const std::string&, LogLevel = LogLevel::Info) {}
  [[nodiscard]] LogLevel min_level() const { return LogLevel::Info; }
  [[nodiscard]] bool enabled(LogLevel) const { return false; }
  void write(LogLevel, std::string_view,
             const std::vector<std::pair<std::string, std::string>>&) {}
};

class LogEvent {
 public:
  LogEvent(Log*, LogLevel, std::string_view) {}
  LogEvent& str(std::string_view, std::string_view) { return *this; }
  LogEvent& num(std::string_view, std::int64_t) { return *this; }
};

#endif

}  // namespace cny::obs
