// OpenMetrics text exposition: renders MetricsSnapshots in the standard
// Prometheus-compatible format (one `# TYPE` line per family, counters
// with a `_total` sample, histograms as cumulative `le` buckets derived
// from the log2 bucket_bounds, terminated by `# EOF`).
//
// This is a pure renderer — snapshots in, text out, no I/O — so the
// /metrics HTTP handler, the CLI, and the tests all share one formatter
// and tools/check_openmetrics.py validates them all at once.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace cny::obs {

/// Content-Type the OpenMetrics spec requires for the text format.
inline constexpr const char* kOpenMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Sanitises a metric name into the exposition charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*) and prefixes "cny_": "process.rss_kb" ->
/// "cny_process_rss_kb".
[[nodiscard]] std::string openmetrics_name(std::string_view name);

/// Renders `server` (a YieldServer registry snapshot) plus `process` (the
/// global registry: exec.*, kernels.*, process.*) as one OpenMetrics text
/// page. Name collisions between the two favour the server snapshot.
[[nodiscard]] std::string render_openmetrics(const MetricsSnapshot& server,
                                             const MetricsSnapshot& process);

}  // namespace cny::obs
