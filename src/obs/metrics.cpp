#include "obs/metrics.h"

#include <stdexcept>

namespace cny::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q >= 1.0) return static_cast<double>(max);
  // The (1-based) rank of the requested observation, then a scan for the
  // bucket holding it. Within the bucket the observations are assumed
  // uniform — a one-bucket error bound, which log2 buckets keep to 2x.
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < buckets.size(); ++b) {
    const std::uint64_t here = buckets[b];
    if (here == 0) continue;
    if (static_cast<double>(seen + here) >= rank) {
      const auto [lo, hi] = Histogram::bucket_bounds(b);
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(here);
      const double value =
          static_cast<double>(lo) +
          within * static_cast<double>(hi - lo);
      // The exact max caps the estimate: the top bucket's nominal upper
      // bound can exceed anything actually observed.
      return value > static_cast<double>(max) ? static_cast<double>(max)
                                              : value;
    }
    seen += here;
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

std::pair<std::uint64_t, std::uint64_t> Histogram::bucket_bounds(
    unsigned bucket) {
  if (bucket == 0) return {0, 0};
  const std::uint64_t lo = std::uint64_t{1} << (bucket - 1);
  const std::uint64_t hi =
      bucket >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << bucket) - 1;
  return {lo, hi};
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.find(name) != gauges_.end() ||
      histograms_.find(name) != histograms_.end()) {
    throw std::logic_error("obs::Registry: metric '" + std::string(name) +
                           "' already exists as another kind");
  }
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  auto& slot = counters_[std::string(name)];
  slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.find(name) != counters_.end() ||
      histograms_.find(name) != histograms_.end()) {
    throw std::logic_error("obs::Registry: metric '" + std::string(name) +
                           "' already exists as another kind");
  }
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  auto& slot = gauges_[std::string(name)];
  slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.find(name) != counters_.end() ||
      gauges_.find(name) != gauges_.end()) {
    throw std::logic_error("obs::Registry: metric '" + std::string(name) +
                           "' already exists as another kind");
  }
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  auto& slot = histograms_[std::string(name)];
  slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) {
    out.counters.emplace_back(name, metric->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) {
    out.gauges.emplace_back(name, metric->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    out.histograms.emplace_back(name, metric->snapshot());
  }
  return out;
}

Registry& Registry::global() {
  // Leaked on purpose: pool workers and kernel call sites may update
  // metrics during static destruction (the shared ThreadPool drains at
  // exit); a destroyed registry there would be a use-after-free.
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace cny::obs
