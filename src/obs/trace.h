// Structured tracing: monotonic-clock spans exported as Chrome
// trace-event JSONL (loadable in chrome://tracing and Perfetto, and
// aggregated offline by tools/trace_summary.py).
//
// A TraceSink owns one output file. Every event is a "complete" event
// (ph:"X") written as a single line, so a sink killed mid-run still yields
// a parseable file — the JSON array opener is written up front, each event
// line ends with a comma, and the closing "]" lands only on clean
// destruction (both trace viewers and trace_summary.py tolerate the
// unclosed form).
//
// A Span is the RAII front end: it captures the monotonic clock on
// construction and emits one complete event on destruction (or finish()).
// A Span built over a null sink is inert — one pointer test per call, the
// contract behind "tracing off costs nothing measurable". Timestamps are
// nanoseconds since the *sink's* origin (its construction instant), so all
// spans of one trace share a zero point regardless of thread.
//
// Compile-out: configuring with -DCNY_OBS=OFF defines CNY_NO_OBS and
// replaces Span/TraceSink with no-op stubs of identical shape — call sites
// build unchanged, the object code carries no tracing, and the
// zero-perturbation tests still pass (the spans were never allowed to
// influence results in the first place).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cny::obs {

/// True when this build carries the tracing implementation (CNY_OBS=ON).
[[nodiscard]] constexpr bool tracing_compiled() {
#if defined(CNY_NO_OBS)
  return false;
#else
  return true;
#endif
}

/// A fresh process-unique trace id: 16 lowercase hex chars, scrambled so
/// ids from concurrent clients don't collide on prefixes. Stable API in
/// both build modes (callers gate on a sink, not on the build).
[[nodiscard]] std::string next_trace_id();

#if !defined(CNY_NO_OBS)

class TraceSink {
 public:
  /// Opens (truncates) `path` and writes the array opener. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit TraceSink(const std::string& path);
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Nanoseconds since this sink's origin (monotonic).
  [[nodiscard]] std::uint64_t now_ns() const {
    return since_origin_ns(std::chrono::steady_clock::now());
  }
  /// Converts a caller-captured monotonic timestamp to sink time —
  /// how the server turns a request's queue-arrival instant into the
  /// queue_wait span start. Clamped to 0 before the sink existed.
  [[nodiscard]] std::uint64_t since_origin_ns(
      std::chrono::steady_clock::time_point t) const {
    if (t <= origin_) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - origin_)
            .count());
  }

  /// Writes one complete event ("ph":"X"): [start_ns, start_ns + dur_ns)
  /// in sink time, on the calling thread's trace tid. `args` become the
  /// event's args object (string values, JSON-escaped here).
  void complete(
      std::string_view name, std::string_view category,
      std::uint64_t start_ns, std::uint64_t dur_ns,
      const std::vector<std::pair<std::string, std::string>>& args = {});

  /// Flushes buffered event lines to the file (events are already
  /// line-buffered; this is for tests that read the file mid-run).
  void flush();

 private:
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point origin_;
};

/// RAII span: construction starts the clock, destruction (or finish())
/// emits one complete event. Null sink = fully inert.
class Span {
 public:
  Span() = default;
  Span(TraceSink* sink, std::string_view name,
       std::string_view category = "app")
      : sink_(sink), name_(name), category_(category) {
    if (sink_ != nullptr) start_ns_ = sink_->now_ns();
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a string arg to the eventual event. No-op when inert.
  void arg(std::string_view key, std::string_view value) {
    if (sink_ != nullptr) args_.emplace_back(key, value);
  }

  /// Emits the event now (idempotent; the destructor calls it).
  void finish() {
    if (sink_ == nullptr) return;
    sink_->complete(name_, category_, start_ns_, sink_->now_ns() - start_ns_,
                    args_);
    sink_ = nullptr;
  }

 private:
  TraceSink* sink_ = nullptr;
  std::string_view name_;
  std::string_view category_;
  std::uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

#else  // CNY_NO_OBS: same shape, no behaviour, no storage beyond the API.

class TraceSink {
 public:
  explicit TraceSink(const std::string&) {}
  [[nodiscard]] std::uint64_t now_ns() const { return 0; }
  [[nodiscard]] std::uint64_t since_origin_ns(
      std::chrono::steady_clock::time_point) const {
    return 0;
  }
  void complete(std::string_view, std::string_view, std::uint64_t,
                std::uint64_t,
                const std::vector<std::pair<std::string, std::string>>& =
                    {}) {}
  void flush() {}
};

class Span {
 public:
  Span() = default;
  Span(TraceSink*, std::string_view, std::string_view = "app") {}
  void arg(std::string_view, std::string_view) {}
  void finish() {}
};

#endif

}  // namespace cny::obs
