#include "obs/snapshot.h"

#include <map>
#include <stdexcept>

namespace cny::obs {

namespace {

/// Minimal JSON string escape for metric names (which are identifiers by
/// convention, but a hostile name must still produce a parseable line).
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::vector<std::pair<std::string, double>> counter_rates(
    const TimedSnapshot& from, const TimedSnapshot& to) {
  std::vector<std::pair<std::string, double>> out;
  // Zero-interval guard: a rate over no elapsed time is reported as 0,
  // not NaN/inf — two snapshots taken back-to-back are legal input.
  if (to.mono_us <= from.mono_us) {
    for (const auto& [name, value] : to.metrics.counters) {
      out.emplace_back(name, 0.0);
    }
    return out;
  }
  const double dt_s =
      static_cast<double>(to.mono_us - from.mono_us) / 1e6;
  std::map<std::string, std::uint64_t> before;
  for (const auto& [name, value] : from.metrics.counters) {
    before.emplace(name, value);
  }
  for (const auto& [name, value] : to.metrics.counters) {
    const auto it = before.find(name);
    if (it == before.end()) continue;  // appeared mid-window
    // Monotonicity clamp: counters never decrease, so an apparent
    // decrease means the source restarted between snapshots — rate 0
    // beats a bogus negative.
    const std::uint64_t delta = value >= it->second ? value - it->second : 0;
    out.emplace_back(name, static_cast<double>(delta) / dt_s);
  }
  return out;
}

std::string snapshot_jsonl_line(const TimedSnapshot& snapshot) {
  std::string out = "{\"wall_ms\":" + std::to_string(snapshot.wall_ms) +
                    ",\"mono_us\":" + std::to_string(snapshot.mono_us) +
                    ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.metrics.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.metrics.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "}}";
  return out;
}

SnapshotRing::SnapshotRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  slots_.reserve(capacity_);
}

void SnapshotRing::push(TimedSnapshot snapshot) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slots_.size() < capacity_) {
    slots_.push_back(std::move(snapshot));
    return;
  }
  slots_[next_] = std::move(snapshot);
  next_ = (next_ + 1) % capacity_;
}

std::size_t SnapshotRing::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

TimedSnapshot SnapshotRing::at(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index >= slots_.size()) {
    throw std::out_of_range("SnapshotRing::at(" + std::to_string(index) +
                            ") of " + std::to_string(slots_.size()));
  }
  // Before the first wrap slots_ is already oldest-first; after it, the
  // oldest surviving entry sits at the wrap position.
  const std::size_t base = slots_.size() < capacity_ ? 0 : next_;
  return slots_[(base + index) % slots_.size()];
}

std::vector<std::pair<std::string, double>> SnapshotRing::latest_rates()
    const {
  TimedSnapshot from;
  TimedSnapshot to;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (slots_.size() < 2) return {};
    const std::size_t base = slots_.size() < capacity_ ? 0 : next_;
    from = slots_[(base + slots_.size() - 2) % slots_.size()];
    to = slots_[(base + slots_.size() - 1) % slots_.size()];
  }
  return counter_rates(from, to);
}

}  // namespace cny::obs
